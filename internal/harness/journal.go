package harness

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sync"
)

// JournalVersion is the version stamped on every journal record. Records
// with a different version are ignored on load (treated like corruption),
// so a journal written by an incompatible build resumes nothing instead of
// resurrecting mismatched results.
const JournalVersion = 1

// JournalFormat is the file-level format version carried by the header
// record NewJournal writes as the file's first line. It lets a resuming
// process (and the fleet's gateway/worker handshake) reject a journal
// written by an incompatible build with a clear error instead of silently
// restoring nothing. Header-less journals written before the header
// existed load fine and report Format 0.
const JournalFormat = 2

// headerKind is the record kind of the file header. Header records carry
// the file format version and the run scope; they are parsed into the
// Journal's metadata rather than the restorable record map.
const headerKind = "journal-header"

// journalHeader is the header record's payload.
type journalHeader struct {
	// Format is the journal file format version (JournalFormat at write
	// time).
	Format int `json:"format"`
	// Scope, when non-empty, names the run the journal belongs to (the
	// CLI's identity plus every option that shapes its units). Opening
	// with a different scope via OpenJournalScope is a hard error.
	Scope string `json:"scope,omitempty"`
}

// Journal is a crash-safe per-run checkpoint log: one JSONL record per
// completed unit of work, each fsync'd before the completion is
// acknowledged, keyed by a stable fingerprint. A run that was interrupted
// — SIGINT, crash, power loss — resumes by reopening the journal: units
// whose fingerprints are already recorded are restored instead of re-run,
// and because every unit is deterministic, the resumed run's output is
// byte-identical to an uninterrupted run.
//
// The format is line-oriented JSON so a torn final write (the crash case)
// damages at most the last line; loading skips unparseable or
// wrong-version lines and counts them (CorruptLines) rather than failing,
// losing only the records on those lines.
//
// A Journal is safe for concurrent use by the parallel runner's workers.
type Journal struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	seen     map[journalKey]json.RawMessage
	restored int
	corrupt  int
	appended int
	format   int    // file format from the header record (0 = legacy, no header)
	scope    string // run scope from the header record ("" = unscoped)
}

type journalKey struct{ kind, fp string }

// journalRecord is the wire format: version, record kind (RecordCell
// writes "cell", failures "fail", hang stack dumps "hang", the fault
// campaign "unit", the soak harness "soak-unit"), the unit fingerprint,
// and the kind-specific payload.
type journalRecord struct {
	V    int             `json:"v"`
	Kind string          `json:"kind"`
	Fp   string          `json:"fp,omitempty"`
	Data json.RawMessage `json:"data,omitempty"`
}

// NewJournal creates (or truncates) a journal at path, starting a fresh
// run with no restorable records. The file begins with a header record
// carrying the journal format version (see NewJournalScope to also bind
// the journal to a run scope).
func NewJournal(path string) (*Journal, error) {
	return NewJournalScope(path, "")
}

// NewJournalScope is NewJournal with the run's scope stamped into the
// header record: reopening the journal via OpenJournalScope with a
// different scope fails with a clear error instead of silently restoring
// nothing.
func NewJournalScope(path, scope string) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("harness: creating journal: %w", err)
	}
	j := &Journal{
		f: f, path: path, seen: make(map[journalKey]json.RawMessage),
		format: JournalFormat, scope: scope,
	}
	// The header is written directly (not via Record) so it stays pure
	// file metadata: it never appears in the restorable record map and
	// never counts toward Appended, mirroring how OpenJournal loads it.
	line, err := EncodeRecord(headerKind, "", journalHeader{Format: JournalFormat, Scope: scope})
	if err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return nil, fmt.Errorf("harness: writing journal header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("harness: syncing journal: %w", err)
	}
	return j, nil
}

// OpenJournal opens an existing journal for resumption: every well-formed
// record already in the file becomes restorable via Lookup, and new
// records append after them. Corrupted or truncated lines (a crash mid-
// write) are skipped and counted, never fatal. The file must exist — use
// NewJournal to start a fresh run.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("harness: opening journal: %w", err)
	}
	j := &Journal{f: f, path: path, seen: make(map[journalKey]json.RawMessage)}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20) // series-bearing cell records can be large
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.V != JournalVersion || rec.Kind == "" {
			j.corrupt++
			continue
		}
		if rec.Kind == headerKind {
			// The header is file metadata, not a restorable record: it
			// feeds the format/scope accessors and the compatibility
			// checks below instead of the record map.
			var h journalHeader
			if err := json.Unmarshal(rec.Data, &h); err != nil {
				j.corrupt++
				continue
			}
			j.format, j.scope = h.Format, h.Scope
			continue
		}
		j.seen[journalKey{rec.Kind, rec.Fp}] = append(json.RawMessage(nil), rec.Data...)
		j.restored++
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("harness: reading journal: %w", err)
	}
	if j.format > JournalFormat {
		f.Close()
		return nil, fmt.Errorf("harness: journal %s is format v%d, this build writes v%d — refusing to resume from a newer build's journal",
			path, j.format, JournalFormat)
	}
	// Append after the last complete line. Two torn-tail shapes need a
	// newline repaired in first (both are SIGKILL-mid-write artifacts):
	// an unparseable partial line (counted corrupt above), and — subtler —
	// a record whose bytes all made it to disk but whose trailing newline
	// did not. The latter parses fine and is restored, but appending
	// straight after it would merge the next record onto the same line,
	// corrupting BOTH records on the following open. So the repair is
	// keyed on how the file actually ends, not on the corrupt count.
	end, err := f.Seek(0, 2)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("harness: seeking journal: %w", err)
	}
	needsNL := false
	if end > 0 {
		last := make([]byte, 1)
		if _, err := f.ReadAt(last, end-1); err != nil {
			f.Close()
			return nil, fmt.Errorf("harness: inspecting journal tail: %w", err)
		}
		needsNL = last[0] != '\n'
	}
	if needsNL {
		if _, err := f.WriteString("\n"); err != nil {
			f.Close()
			return nil, fmt.Errorf("harness: repairing journal tail: %w", err)
		}
	}
	return j, nil
}

// OpenJournalScope is OpenJournal plus the scope handshake: a journal
// whose header names a different scope is rejected with an error that says
// what the journal was for, instead of the resume silently restoring
// nothing because every fingerprint misses. Legacy journals with no header
// (format 0) and headers with an empty scope are tolerated — there is
// nothing to check against.
func OpenJournalScope(path, scope string) (*Journal, error) {
	j, err := OpenJournal(path)
	if err != nil {
		return nil, err
	}
	if j.scope != "" && scope != "" && j.scope != scope {
		j.Close()
		return nil, fmt.Errorf("harness: journal %s was written for scope %q, this run is scope %q — use a fresh journal (or matching options) instead of resuming across runs",
			path, j.scope, scope)
	}
	return j, nil
}

// Format reports the journal file's format version from its header record:
// JournalFormat for journals this build wrote, 0 for legacy header-less
// files.
func (j *Journal) Format() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.format
}

// Scope reports the run scope bound into the journal's header record
// ("" when unscoped or legacy).
func (j *Journal) Scope() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.scope
}

// Record durably appends one record: the payload is marshalled, written as
// one line, and fsync'd before Record returns, so an acknowledged record
// survives a crash. It also becomes immediately restorable via Lookup.
func (j *Journal) Record(kind, fp string, payload any) error {
	data, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("harness: marshalling journal record: %w", err)
	}
	line, err := json.Marshal(journalRecord{V: JournalVersion, Kind: kind, Fp: fp, Data: data})
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("harness: appending journal record: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("harness: syncing journal: %w", err)
	}
	j.seen[journalKey{kind, fp}] = data
	j.appended++
	return nil
}

// EncodeRecord renders one journal record as its wire line (no trailing
// newline): the same bytes Record appends to the file. The fleet's workers
// stream results to the gateway as exactly these lines, so the network
// wire format and the on-disk checkpoint format are one format.
func EncodeRecord(kind, fp string, payload any) ([]byte, error) {
	data, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("harness: marshalling journal record: %w", err)
	}
	return json.Marshal(journalRecord{V: JournalVersion, Kind: kind, Fp: fp, Data: data})
}

// DecodeRecord parses one journal wire line into its kind, fingerprint and
// raw payload. Lines with the wrong record version (a different build's
// wire format) are an error — the receiver must not act on records it
// cannot faithfully interpret.
func DecodeRecord(line []byte) (kind, fp string, data json.RawMessage, err error) {
	var rec journalRecord
	if err := json.Unmarshal(line, &rec); err != nil {
		return "", "", nil, fmt.Errorf("harness: parsing journal record: %w", err)
	}
	if rec.V != JournalVersion || rec.Kind == "" {
		return "", "", nil, fmt.Errorf("harness: journal record version v%d (kind %q), this build speaks v%d", rec.V, rec.Kind, JournalVersion)
	}
	return rec.Kind, rec.Fp, rec.Data, nil
}

// RecordRaw durably appends a record whose payload is already marshalled
// (a wire line's Data), byte-for-byte. The gateway checkpoints worker
// results with it so its journal holds exactly the bytes it deduplicates
// against.
func (j *Journal) RecordRaw(kind, fp string, data json.RawMessage) error {
	line, err := json.Marshal(journalRecord{V: JournalVersion, Kind: kind, Fp: fp, Data: data})
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("harness: appending journal record: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("harness: syncing journal: %w", err)
	}
	j.seen[journalKey{kind, fp}] = append(json.RawMessage(nil), data...)
	j.appended++
	return nil
}

// LookupRaw returns the raw payload bytes of the (kind, fingerprint)
// record, or nil when absent.
func (j *Journal) LookupRaw(kind, fp string) json.RawMessage {
	j.mu.Lock()
	defer j.mu.Unlock()
	data := j.seen[journalKey{kind, fp}]
	if data == nil {
		return nil
	}
	return append(json.RawMessage(nil), data...)
}

// Lookup restores the payload of the (kind, fingerprint) record into out,
// reporting whether such a record exists. A payload that no longer decodes
// into out's type reports false, like a corrupt line.
func (j *Journal) Lookup(kind, fp string, out any) bool {
	j.mu.Lock()
	data, ok := j.seen[journalKey{kind, fp}]
	j.mu.Unlock()
	if !ok || data == nil {
		return false
	}
	return json.Unmarshal(data, out) == nil
}

// Restored is how many well-formed records were loaded from disk when the
// journal was opened for resumption.
func (j *Journal) Restored() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.restored
}

// CorruptLines is how many unparseable or wrong-version lines were
// skipped on load.
func (j *Journal) CorruptLines() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.corrupt
}

// Appended is how many records this process added.
func (j *Journal) Appended() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appended
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// Fingerprint is the cell's stable identity within a scope (the experiment
// id plus run-shaping options): the workload's renamed label, the variant,
// a hash of the full machine configuration and the sampling granularity.
// Identical cells fingerprint identically — which is sound, because
// identical cells are deterministic and produce identical results — and
// any configuration or scale change misses the journal and re-runs, never
// resurrecting a stale result.
func (c Cell) Fingerprint(scope string) string {
	name := c.Make().Name()
	if c.Rename != nil {
		name = c.Rename(name)
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%s|sample=%d|cfg=%+v", scope, name, c.Variant, c.SampleEvery, *c.Config)
	return fmt.Sprintf("%s/%s/%s[%s]#%016x", scope, name, c.Config.Design, c.Variant, h.Sum64())
}

// hangRecord is the payload journaled when the watchdog marks a cell hung:
// the attempt that hung and a dump of every goroutine's stack at detection
// time, for post-mortem debugging of the stuck workload.
type hangRecord struct {
	Label   string `json:"label"`
	Attempt int    `json:"attempt"`
	Stacks  string `json:"stacks"`
}
