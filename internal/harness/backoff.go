package harness

import "time"

// BackoffPolicy is the shared retry-pause schedule: exponential growth from
// Base, capped at Max, with seeded downward jitter so a herd of retriers
// (the parallel runner's workers, the fleet gateway's redelivery loop, a
// fleet worker's request retries) never synchronizes into thundering
// retries. Delay is a pure function of (policy, attempt), so tests can pin
// the exact schedule; the jitter only ever shortens a delay, so Max is a
// hard bound.
//
// The zero value means "no pause": Delay returns 0 for every attempt,
// preserving the historical retry-immediately default of Runner.
type BackoffPolicy struct {
	// Base is the delay before the first retry (attempt 1). Zero disables
	// backoff entirely.
	Base time.Duration
	// Max caps every delay. Zero selects 32*Base — deep enough that a
	// handful of redeliveries spreads out, bounded enough that a lease
	// is never parked for minutes by accident.
	Max time.Duration
	// Jitter is the fraction of each delay that is randomized away
	// (0.25 = each delay lands uniformly in [0.75d, d]). Values outside
	// [0, 1] are clamped. Zero keeps the schedule exact.
	Jitter float64
	// Seed selects the deterministic jitter sequence, so a seeded run's
	// wall-clock schedule is reproducible. The jitter never affects
	// simulated results — backoff is wall-clock-only.
	Seed uint64
}

// Delay returns the pause before retry attempt a (first retry = 1).
// Attempts below 1 and a zero Base return 0.
func (p BackoffPolicy) Delay(a int) time.Duration {
	if a < 1 || p.Base <= 0 {
		return 0
	}
	max := p.Max
	if max <= 0 {
		max = 32 * p.Base
	}
	d := p.Base
	// Shift with an overflow guard: once past the cap (or the shift
	// range), the cap is the answer.
	for i := 1; i < a; i++ {
		if d >= max || d > (1<<62)/2 {
			d = max
			break
		}
		d *= 2
	}
	if d > max {
		d = max
	}
	j := p.Jitter
	if j < 0 {
		j = 0
	} else if j > 1 {
		j = 1
	}
	if j > 0 && d > 0 {
		// splitmix64 over (seed, attempt): deterministic per-attempt
		// fraction in [0, 1) shaving off up to Jitter of the delay.
		u := splitmix64(p.Seed ^ (uint64(a) * 0x9e3779b97f4a7c15))
		frac := float64(u>>11) / (1 << 53)
		d = time.Duration(float64(d) * (1 - j*frac))
	}
	return d
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-distributed hash
// used only to derive jitter fractions.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
