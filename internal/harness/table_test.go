package harness_test

import (
	"bytes"
	"strings"
	"testing"

	"tvarak/internal/harness"
	"tvarak/internal/obs"
	"tvarak/internal/param"
)

func res(w string, d param.Design, variant string, cycles uint64, energy float64) *harness.Result {
	r := &harness.Result{Workload: w, Design: d, Variant: variant}
	r.Stats.Cycles = cycles
	r.Stats.EnergyPJ = energy
	return r
}

func TestFindPrefersEmptyVariant(t *testing.T) {
	tab := &harness.Table{}
	sweep := res("w", param.Tvarak, "2-way", 900, 90)
	plain := res("w", param.Tvarak, "", 1000, 100)
	tab.Add(sweep)
	tab.Add(plain)
	if got := tab.Find("w", param.Tvarak); got != plain {
		t.Errorf("Find returned %q, want the plain run", got.Label())
	}
	if got := tab.FindVariant("w", param.Tvarak, "2-way"); got != sweep {
		t.Errorf("FindVariant returned %v", got)
	}
	if tab.FindVariant("w", param.Tvarak, "64-way") != nil {
		t.Error("FindVariant invented a result")
	}
	// With only variants present, Find falls back to the first one.
	only := &harness.Table{}
	only.Add(sweep)
	if got := only.Find("w", param.Tvarak); got != sweep {
		t.Errorf("variant-only Find returned %v", got)
	}
}

func TestOverheadUsesPlainBaselineAmongVariants(t *testing.T) {
	tab := &harness.Table{}
	// An ablation-style table where a baseline variant is inserted before
	// the plain baseline; overheads must still be relative to the plain run.
	tab.Add(res("w", param.Baseline, "no-cache", 2000, 400))
	tab.Add(res("w", param.Baseline, "", 1000, 200))
	tv := res("w", param.Tvarak, "", 1100, 300)
	tab.Add(tv)
	if got := tab.Overhead(tv); got < 0.099 || got > 0.101 {
		t.Errorf("Overhead = %v, want 0.10 (vs plain baseline, not the variant)", got)
	}
	if got := tab.EnergyOverhead(tv); got < 0.499 || got > 0.501 {
		t.Errorf("EnergyOverhead = %v, want 0.50", got)
	}
}

func TestOverheadDegenerateBaselines(t *testing.T) {
	tab := &harness.Table{}
	r := res("w", param.Tvarak, "", 1100, 300)
	tab.Add(r)
	if tab.Overhead(r) != 0 || tab.EnergyOverhead(r) != 0 {
		t.Error("missing baseline should yield 0 overheads")
	}
	// A zero-runtime/zero-energy baseline must not divide by zero.
	tab.Add(res("w", param.Baseline, "", 0, 0))
	if tab.Overhead(r) != 0 || tab.EnergyOverhead(r) != 0 {
		t.Error("zero baseline should yield 0 overheads, not Inf/NaN")
	}
}

func TestTableRendersInInsertionOrder(t *testing.T) {
	tab := &harness.Table{}
	tab.Add(res("zeta", param.Tvarak, "", 1, 1))
	tab.Add(res("alpha", param.Baseline, "", 1, 1))
	out := tab.String()
	if strings.Index(out, "zeta") > strings.Index(out, "alpha") {
		t.Errorf("rows not in insertion order:\n%s", out)
	}
}

func TestSortedDesignsStable(t *testing.T) {
	// Same (workload, design) keys must keep their relative order: variant
	// sweeps rely on it.
	rs := []*harness.Result{
		res("w", param.Tvarak, "8-way", 1, 1),
		res("a", param.Tvarak, "", 1, 1),
		res("w", param.Tvarak, "2-way", 1, 1),
		res("w", param.Baseline, "", 1, 1),
	}
	harness.SortedDesigns(rs)
	want := []string{"a/Tvarak", "w/Baseline", "w/Tvarak[8-way]", "w/Tvarak[2-way]"}
	for i, r := range rs {
		if got := r.Workload + "/" + r.Label(); got != want[i] {
			t.Fatalf("order[%d] = %q, want %q (full: %v)", i, got, want, rs)
		}
	}
}

// TestTelemetryIsReadOnly is the golden acceptance test: attaching the
// sampler and tracer must leave the simulated results — and therefore the
// rendered tables — byte-identical to an unobserved run.
func TestTelemetryIsReadOnly(t *testing.T) {
	cfg := param.SmallTest(param.Tvarak)
	plain, err := harness.Run(cfg, &toyWorkload{name: "toy", stores: 400})
	if err != nil {
		t.Fatal(err)
	}
	var trace bytes.Buffer
	tr := obs.NewJSONL(&trace, 0)
	observed, err := harness.RunObserved(cfg, &toyWorkload{name: "toy", stores: 400},
		harness.Observation{SampleEvery: 5_000, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	if plain.Stats != observed.Stats {
		t.Errorf("telemetry perturbed the run:\nplain:    %+v\nobserved: %+v", plain.Stats, observed.Stats)
	}
	tabA, tabB := &harness.Table{Title: "g"}, &harness.Table{Title: "g"}
	tabA.Add(plain)
	tabB.Add(observed)
	if tabA.String() != tabB.String() {
		t.Errorf("tables differ:\n%s\nvs\n%s", tabA, tabB)
	}

	// And the telemetry itself must be non-trivial: the series deltas sum
	// back to the aggregate, and the trace saw the run's events.
	if len(observed.Series) == 0 {
		t.Fatal("no samples recorded")
	}
	var sum uint64
	for _, s := range observed.Series {
		sum += s.Delta.Cache[0].Total() + s.Delta.Cache[1].Total() +
			s.Delta.Cache[2].Total() + s.Delta.Cache[3].Total()
	}
	if sum != observed.Stats.CacheTotal() {
		t.Errorf("series cache accesses = %d, want aggregate %d", sum, observed.Stats.CacheTotal())
	}
	if tr.Written() == 0 || !strings.Contains(trace.String(), `"ev":"writeback"`) {
		t.Errorf("trace recorded no writebacks (%d events)", tr.Written())
	}
}

func TestExportRunsCarriesOverheadsAndSeries(t *testing.T) {
	tab := &harness.Table{}
	tab.Add(res("w", param.Baseline, "", 1000, 200))
	tv := res("w", param.Tvarak, "", 1100, 300)
	tv.Series = []obs.Sample{{Cycle: 500}, {Cycle: 1100}}
	tab.Add(tv)
	recs := tab.ExportRuns("exp-x")
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	got := recs[1]
	if got.Experiment != "exp-x" || got.Design != "Tvarak" ||
		got.RuntimeOverhead < 0.099 || got.RuntimeOverhead > 0.101 ||
		len(got.Series) != 2 {
		t.Errorf("record = %+v", got)
	}
}
