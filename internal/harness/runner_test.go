package harness_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"tvarak/internal/harness"
	"tvarak/internal/param"
	"tvarak/internal/sim"
)

// toyCells builds n independent cells over toyWorkload with distinct names
// and store counts, alternating designs so the pool sees heterogeneous work.
func toyCells(n int) []harness.Cell {
	designs := param.Designs()
	cells := make([]harness.Cell, n)
	for i := range cells {
		i := i
		d := designs[i%len(designs)]
		cells[i] = harness.Cell{
			Config: param.SmallTest(d),
			Make: func() harness.Workload {
				return &toyWorkload{name: fmt.Sprintf("toy%02d", i), stores: 50 + 25*i}
			},
		}
	}
	return cells
}

func TestRunnerPreservesCellOrder(t *testing.T) {
	cells := toyCells(8)
	cells[3].Variant = "v3"
	cells[5].Rename = func(w string) string { return w + "/renamed" }
	rs, err := harness.Runner{Workers: 4}.Run(cells)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(cells) {
		t.Fatalf("got %d results, want %d", len(rs), len(cells))
	}
	for i, r := range rs {
		want := fmt.Sprintf("toy%02d", i)
		if i == 5 {
			want += "/renamed"
		}
		if r.Workload != want {
			t.Errorf("result %d workload = %q, want %q", i, r.Workload, want)
		}
		if r.Design != cells[i].Config.Design {
			t.Errorf("result %d design = %v, want %v", i, r.Design, cells[i].Config.Design)
		}
		if (i == 3) != (r.Variant == "v3") {
			t.Errorf("result %d variant = %q", i, r.Variant)
		}
		if r.Stats.Cycles == 0 {
			t.Errorf("result %d has zero runtime", i)
		}
	}
}

func TestRunnerParallelMatchesSequential(t *testing.T) {
	seqTab, err := harness.Runner{Workers: 1}.RunTable("determinism", toyCells(10))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 8} {
		parTab, err := harness.Runner{Workers: workers}.RunTable("determinism", toyCells(10))
		if err != nil {
			t.Fatal(err)
		}
		if seqTab.String() != parTab.String() {
			t.Errorf("Workers=%d table differs from sequential:\n--- sequential ---\n%s--- parallel ---\n%s",
				workers, seqTab, parTab)
		}
	}
}

// failingWorkload errors during Setup, exercising the runner's error path.
type failingWorkload struct{ name string }

func (w *failingWorkload) Name() string { return w.name }
func (w *failingWorkload) Setup(*harness.System) error {
	return fmt.Errorf("injected failure in %s", w.name)
}
func (w *failingWorkload) Workers(*harness.System) []func(*sim.Core) { return nil }

func TestRunnerReportsFirstErrorInCellOrder(t *testing.T) {
	for _, workers := range []int{1, 4} {
		cells := toyCells(8)
		for _, bad := range []int{2, 6} {
			bad := bad
			cells[bad].Make = func() harness.Workload {
				return &failingWorkload{name: fmt.Sprintf("bad%d", bad)}
			}
		}
		_, err := harness.Runner{Workers: workers}.Run(cells)
		if err == nil {
			t.Fatalf("Workers=%d: expected an error", workers)
		}
		if want := "bad2"; !strings.Contains(err.Error(), want) {
			t.Errorf("Workers=%d: error = %v, want the cell-order-first failure (%s)", workers, err, want)
		}
	}
}

// gatedFailingWorkload fails after a shared barrier releases, so a test can
// force several failures to be in flight simultaneously.
type gatedFailingWorkload struct {
	name string
	gate *sync.WaitGroup
}

func (w *gatedFailingWorkload) Name() string { return w.name }
func (w *gatedFailingWorkload) Setup(*harness.System) error {
	w.gate.Done()
	w.gate.Wait()
	return fmt.Errorf("injected failure in %s", w.name)
}
func (w *gatedFailingWorkload) Workers(*harness.System) []func(*sim.Core) { return nil }

func TestRunnerAggregatesAllFailuresEarliestFirst(t *testing.T) {
	// Both bad cells block at a barrier until the other has started, so
	// both failures are guaranteed to be in flight together — the runner
	// must report BOTH (errors.Join), with the earliest cell index first,
	// not just whichever happened to lose the race.
	var gate sync.WaitGroup
	gate.Add(2)
	cells := toyCells(8)
	for _, bad := range []int{2, 6} {
		bad := bad
		cells[bad].Make = func() harness.Workload {
			return &gatedFailingWorkload{name: fmt.Sprintf("bad%d", bad), gate: &gate}
		}
	}
	_, err := harness.Runner{Workers: 4}.Run(cells)
	if err == nil {
		t.Fatal("expected an error")
	}
	msg := err.Error()
	i2, i6 := strings.Index(msg, "bad2"), strings.Index(msg, "bad6")
	if i2 < 0 || i6 < 0 {
		t.Fatalf("error should aggregate both failures, got: %v", err)
	}
	if i2 > i6 {
		t.Errorf("earliest cell's failure should come first, got: %v", err)
	}
}

func TestRunManifestReportsNotAttemptedCells(t *testing.T) {
	cells := toyCells(8)
	cells[2].Make = func() harness.Workload { return &failingWorkload{name: "bad2"} }
	rs, man, err := harness.Runner{Workers: 1}.RunManifest(cells)
	if err == nil {
		t.Fatal("expected an error")
	}
	if man.Completed != 2 || len(man.Failures) != 1 || man.Failures[0].Index != 2 {
		t.Fatalf("manifest = %+v, want 2 completed and cell 2 failed", man)
	}
	// Sequential: after cell 2 fails, cells 3..7 are never attempted — and
	// every one of them must be accounted for, not silently dropped.
	want := []int{3, 4, 5, 6, 7}
	if len(man.NotAttempted) != len(want) {
		t.Fatalf("NotAttempted = %v, want %v", man.NotAttempted, want)
	}
	for i, idx := range want {
		if man.NotAttempted[i] != idx {
			t.Fatalf("NotAttempted = %v, want %v", man.NotAttempted, want)
		}
	}
	for i, r := range rs {
		if (r != nil) != (i < 2) {
			t.Errorf("result %d presence = %v, want results only for cells 0-1", i, r != nil)
		}
	}
}

func TestRunnerProgressSerializedAndComplete(t *testing.T) {
	var (
		mu    sync.Mutex
		calls []int
		total = -1
	)
	rn := harness.Runner{Workers: 4, Progress: func(done, n int, r *harness.Result, d time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		calls = append(calls, done)
		total = n
		if r == nil || d < 0 {
			t.Error("progress called with empty result")
		}
	}}
	if _, err := rn.Run(toyCells(6)); err != nil {
		t.Fatal(err)
	}
	if total != 6 || len(calls) != 6 {
		t.Fatalf("progress calls = %d (total %d), want 6", len(calls), total)
	}
	for i, d := range calls {
		if d != i+1 {
			t.Errorf("progress done sequence %v not monotonically counted", calls)
			break
		}
	}
}

func TestRunnerEmptyAndDefaults(t *testing.T) {
	rs, err := harness.Runner{}.Run(nil)
	if err != nil || rs != nil {
		t.Errorf("empty run = %v, %v", rs, err)
	}
	tab, err := harness.Runner{}.RunTable("t", nil)
	if err != nil || len(tab.Results) != 0 {
		t.Errorf("empty table = %v, %v", tab, err)
	}
}
