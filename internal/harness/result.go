package harness

import (
	"fmt"
	"sort"
	"strings"

	"tvarak/internal/obs"
	"tvarak/internal/param"
	"tvarak/internal/stats"
)

// Result is the outcome of one (workload, design) run: the four metrics of
// Fig. 8. Variant distinguishes sub-configurations within a design (Fig. 9
// ablation points, Fig. 10 way counts).
type Result struct {
	Workload string
	Design   param.Design
	Variant  string
	Stats    stats.Stats

	// Series is the run's epoch time series, populated only when the run
	// was sampled (Observation.SampleEvery / the -sample-every flag).
	Series []obs.Sample

	// Failure, when non-empty, marks this as a degraded-mode placeholder
	// for a cell that failed (Runner.Degrade): Stats are zero and tables
	// render the row as an explicit hole. Failed results never serve as a
	// baseline and are excluded from exports.
	Failure string `json:",omitempty"`
}

// Failed reports whether this result is a degraded-mode failure
// placeholder rather than a real measurement.
func (r *Result) Failed() bool { return r.Failure != "" }

// Label is the display name: the design plus any variant.
func (r *Result) Label() string {
	if r.Variant == "" {
		return r.Design.String()
	}
	return fmt.Sprintf("%s[%s]", r.Design, r.Variant)
}

// Runtime returns the fixed-work runtime in cycles.
func (r *Result) Runtime() uint64 { return r.Stats.Cycles }

// Table groups results and renders the paper-style comparison: absolute
// metrics plus overhead relative to the Baseline run of the same workload.
type Table struct {
	Title   string
	Results []*Result

	// Manifest, when non-nil, is the run's completion accounting
	// (failures, interrupted and never-attempted cells); RunTable always
	// attaches it. A partial table plus its manifest together tell the
	// whole story of a degraded or cancelled run.
	Manifest *Manifest
}

// Add appends a result.
func (t *Table) Add(r *Result) { t.Results = append(t.Results, r) }

// baseline finds the Baseline result for a workload, preferring the plain
// (empty-variant) run: when a table carries ablation variants, overheads
// must be computed against the unmodified baseline, not whichever variant
// happened to be inserted first.
func (t *Table) baseline(workload string) *Result {
	var fallback *Result
	for _, r := range t.Results {
		if r.Workload != workload || r.Design != param.Baseline || r.Failed() {
			continue
		}
		if r.Variant == "" {
			return r
		}
		if fallback == nil {
			fallback = r
		}
	}
	return fallback
}

// Overhead returns the runtime overhead of r relative to its workload's
// baseline, as a fraction (0.03 = 3% slower), or NaN-free 0 when no
// baseline exists.
func (t *Table) Overhead(r *Result) float64 {
	b := t.baseline(r.Workload)
	if b == nil || b.Runtime() == 0 {
		return 0
	}
	return float64(r.Runtime())/float64(b.Runtime()) - 1
}

// EnergyOverhead returns the energy overhead relative to baseline.
func (t *Table) EnergyOverhead(r *Result) float64 {
	b := t.baseline(r.Workload)
	if b == nil || b.Stats.EnergyPJ == 0 {
		return 0
	}
	return r.Stats.EnergyPJ/b.Stats.EnergyPJ - 1
}

// String renders the table: one row per run, in insertion order, with
// runtime, energy, NVM accesses split data/redundancy, and cache accesses —
// the layout of Fig. 8's four panels (plus variants for Figs. 9-10).
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	fmt.Fprintf(&b, "%-20s %-28s %13s %8s %11s %8s %11s %11s %12s\n",
		"workload", "design", "runtime(cyc)", "vs base", "energy(uJ)", "vs base",
		"nvm data", "nvm redun", "cache acc")
	for _, r := range t.Results {
		if r.Failed() {
			reason := r.Failure
			if i := strings.IndexByte(reason, '\n'); i >= 0 {
				reason = reason[:i]
			}
			fmt.Fprintf(&b, "%-20s %-28s FAILED: %s\n", r.Workload, r.Label(), reason)
			continue
		}
		fmt.Fprintf(&b, "%-20s %-28s %13d %8s %11.1f %8s %11d %11d %12d\n",
			r.Workload, r.Label(), r.Runtime(), pct(t.Overhead(r)),
			r.Stats.EnergyPJ/1e6, pct(t.EnergyOverhead(r)),
			r.Stats.NVM.Data(), r.Stats.NVM.Redundancy(), r.Stats.CacheTotal())
	}
	return b.String()
}

// Find returns the result for (workload, design), preferring the plain
// (empty-variant) run when ablation or sweep variants are present, and
// falling back to the first matching variant otherwise. Failure
// placeholders are never returned. Use FindVariant to address a specific
// variant.
func (t *Table) Find(workload string, d param.Design) *Result {
	var fallback *Result
	for _, r := range t.Results {
		if r.Workload != workload || r.Design != d || r.Failed() {
			continue
		}
		if r.Variant == "" {
			return r
		}
		if fallback == nil {
			fallback = r
		}
	}
	return fallback
}

// FindVariant returns the first result for (workload, design, variant), or
// nil.
func (t *Table) FindVariant(workload string, d param.Design, variant string) *Result {
	for _, r := range t.Results {
		if r.Workload == workload && r.Design == d && r.Variant == variant {
			return r
		}
	}
	return nil
}

// pct formats a fraction as "+3.1%".
func pct(f float64) string {
	return fmt.Sprintf("%+.1f%%", f*100)
}

// ExportRuns converts the table's results, in insertion order, into
// machine-readable export records tagged with the experiment id. Failure
// placeholders are skipped — the export schema carries measurements, and
// the manifest (not the export) accounts for holes. Append the records to
// an obs.Export and serialize with WriteJSON/WriteCSV.
func (t *Table) ExportRuns(experiment string) []obs.RunRecord {
	recs := make([]obs.RunRecord, 0, len(t.Results))
	for _, r := range t.Results {
		if r.Failed() {
			continue
		}
		recs = append(recs, obs.RunRecord{
			Experiment:      experiment,
			Workload:        r.Workload,
			Design:          r.Design.String(),
			Variant:         r.Variant,
			RuntimeOverhead: t.Overhead(r),
			EnergyOverhead:  t.EnergyOverhead(r),
			Stats:           r.Stats,
			Series:          r.Series,
		})
	}
	return recs
}

// SortedDesigns is the paper's presentation order.
func SortedDesigns(rs []*Result) {
	sort.SliceStable(rs, func(i, j int) bool {
		if rs[i].Workload != rs[j].Workload {
			return rs[i].Workload < rs[j].Workload
		}
		return rs[i].Design < rs[j].Design
	})
}
