// Package experiments is the registry that maps every table and figure of
// the paper's evaluation to a runnable experiment over the harness and the
// seven applications (see DESIGN.md §3 for the index).
package experiments

import (
	"fmt"
	"strings"

	"tvarak/internal/apps/fio"
	"tvarak/internal/apps/kvtrees"
	"tvarak/internal/apps/nstore"
	"tvarak/internal/apps/redispm"
	"tvarak/internal/apps/stream"
	"tvarak/internal/harness"
	"tvarak/internal/param"
)

// Options tune how experiments run.
type Options struct {
	// FullScale uses the paper's Table III machine (24 MB LLC) instead of
	// the 1/16-scale reproduction machine. Workload footprints do not
	// change, so full-scale runs are meaningful mainly for sizing studies.
	FullScale bool
	// Scale multiplies measured operation counts (1.0 = default).
	Scale float64
	// Designs restricts which designs run (nil = all four).
	Designs []param.Design
}

func (o Options) designs() []param.Design {
	if len(o.Designs) > 0 {
		return o.Designs
	}
	return param.Designs()
}

func (o Options) config(d param.Design) *param.Config {
	if o.FullScale {
		return param.Default(d)
	}
	return param.ReproScale(d)
}

func (o Options) scale(n int) int {
	if o.Scale <= 0 {
		return n
	}
	if s := int(float64(n) * o.Scale); s > 0 {
		return s
	}
	return 1
}

// Experiment regenerates one table or figure of the paper.
type Experiment struct {
	ID    string
	Paper string // which figure/table it reproduces
	Run   func(o Options) (*harness.Table, error)
}

// Experiments returns the full registry, in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "fig8-redis", Paper: "Fig. 8(a)-(d): Redis set-only and get-only", Run: runFig8Redis},
		{ID: "fig8-kv", Paper: "Fig. 8(e)-(h): C-Tree/B-Tree/RB-Tree insert-only and balanced", Run: runFig8KV},
		{ID: "fig8-nstore", Paper: "Fig. 8(i)-(l): N-Store YCSB read-heavy/balanced/update-heavy", Run: runFig8NStore},
		{ID: "fig8-fio", Paper: "Fig. 8(m)-(p): fio seq/rand reads and writes", Run: runFig8Fio},
		{ID: "fig8-stream", Paper: "Fig. 8(q)-(t): stream copy/scale/add/triad", Run: runFig8Stream},
		{ID: "fig9", Paper: "Fig. 9: impact of TVARAK's design choices", Run: runFig9},
		{ID: "fig10a", Paper: "Fig. 10(a): sensitivity to redundancy-caching LLC ways", Run: runFig10a},
		{ID: "fig10b", Paper: "Fig. 10(b): sensitivity to data-diff LLC ways", Run: runFig10b},
		{ID: "sec4g", Paper: "§IV-G: exclusive caches (TVARAK without LLC data diffs)", Run: runSec4G},
		{ID: "sec4h-dimms", Paper: "§IV-H: 4 vs 8 NVM DIMMs", Run: runSec4HDimms},
		{ID: "sec4h-tech", Paper: "§IV-H: Optane-like vs battery-backed-DRAM NVM", Run: runSec4HTech},
		{ID: "ext-vilamb", Paper: "extension: Table I's Vilamb row (asynchronous epochs) vs the paper's designs", Run: runExtVilamb},
	}
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q (have %s)", id, strings.Join(ids, ", "))
}

// runSet executes a set of workloads across designs into one table.
func runSet(o Options, title string, mk []func() harness.Workload) (*harness.Table, error) {
	t := &harness.Table{Title: title}
	for _, m := range mk {
		for _, d := range o.designs() {
			r, err := harness.Run(o.config(d), m())
			if err != nil {
				return nil, err
			}
			t.Add(r)
		}
	}
	return t, nil
}

func runFig8Redis(o Options) (*harness.Table, error) {
	mk := []func() harness.Workload{}
	for _, setOnly := range []bool{true, false} {
		setOnly := setOnly
		mk = append(mk, func() harness.Workload {
			cfg := redispm.Default(setOnly)
			cfg.Ops = o.scale(cfg.Ops)
			return redispm.New(cfg)
		})
	}
	return runSet(o, "Fig. 8(a)-(d) Redis", mk)
}

func runFig8KV(o Options) (*harness.Table, error) {
	mk := []func() harness.Workload{}
	for _, st := range kvtrees.Structures() {
		for _, mix := range []kvtrees.Mix{kvtrees.InsertOnly, kvtrees.Balanced} {
			st, mix := st, mix
			mk = append(mk, func() harness.Workload {
				cfg := kvtrees.Default(st, mix)
				cfg.Ops = o.scale(cfg.Ops)
				return kvtrees.New(cfg)
			})
		}
	}
	return runSet(o, "Fig. 8(e)-(h) key-value structures", mk)
}

func runFig8NStore(o Options) (*harness.Table, error) {
	mk := []func() harness.Workload{}
	for _, mix := range nstore.Mixes() {
		mix := mix
		mk = append(mk, func() harness.Workload {
			cfg := nstore.Default(mix)
			cfg.Txns = o.scale(cfg.Txns)
			return nstore.New(cfg)
		})
	}
	return runSet(o, "Fig. 8(i)-(l) N-Store", mk)
}

func runFig8Fio(o Options) (*harness.Table, error) {
	mk := []func() harness.Workload{}
	for _, pat := range []fio.Pattern{fio.Seq, fio.Rand} {
		for _, wr := range []bool{false, true} {
			pat, wr := pat, wr
			mk = append(mk, func() harness.Workload {
				cfg := fio.Default(pat, wr)
				cfg.AccessBytes = uint64(o.scale(int(cfg.AccessBytes)))
				return fio.New(cfg)
			})
		}
	}
	return runSet(o, "Fig. 8(m)-(p) fio", mk)
}

func runFig8Stream(o Options) (*harness.Table, error) {
	mk := []func() harness.Workload{}
	for _, k := range stream.Kernels() {
		k := k
		mk = append(mk, func() harness.Workload {
			cfg := stream.Default(k)
			cfg.ArrayBytes = uint64(o.scale(int(cfg.ArrayBytes))) &^ 4095
			return stream.New(cfg)
		})
	}
	return runSet(o, "Fig. 8(q)-(t) stream", mk)
}

// fig9Workloads is the paper's ablation set: one workload per application.
func fig9Workloads(o Options) []func() harness.Workload {
	return []func() harness.Workload{
		func() harness.Workload {
			cfg := redispm.Default(true)
			cfg.Ops = o.scale(cfg.Ops)
			return redispm.New(cfg)
		},
		func() harness.Workload {
			cfg := kvtrees.Default(kvtrees.CTree, kvtrees.InsertOnly)
			cfg.Ops = o.scale(cfg.Ops)
			return kvtrees.New(cfg)
		},
		func() harness.Workload {
			cfg := nstore.Default(nstore.BalancedMix)
			cfg.Txns = o.scale(cfg.Txns)
			return nstore.New(cfg)
		},
		func() harness.Workload {
			cfg := fio.Default(fio.Rand, true)
			cfg.AccessBytes = uint64(o.scale(int(cfg.AccessBytes)))
			return fio.New(cfg)
		},
		func() harness.Workload {
			cfg := stream.Default(stream.Triad)
			cfg.ArrayBytes = uint64(o.scale(int(cfg.ArrayBytes))) &^ 4095
			return stream.New(cfg)
		},
	}
}

// fig9Points are the cumulative design points of Fig. 9.
var fig9Points = []struct {
	Name  string
	Feats param.TvarakFeatures
}{
	{"naive", param.TvarakFeatures{}},
	{"+dax-cl-csums", param.TvarakFeatures{CacheLineChecksums: true}},
	{"+red-caching", param.TvarakFeatures{CacheLineChecksums: true, RedundancyCaching: true}},
	{"+data-diffs(tvarak)", param.FullTvarak()},
}

func runFig9(o Options) (*harness.Table, error) {
	t := &harness.Table{Title: "Fig. 9 design-choice ablation (vs Baseline)"}
	for _, mk := range fig9Workloads(o) {
		// Baseline reference.
		r, err := harness.Run(o.config(param.Baseline), mk())
		if err != nil {
			return nil, err
		}
		t.Add(r)
		for _, pt := range fig9Points {
			cfg := o.config(param.Tvarak)
			cfg.Tvarak.Features = pt.Feats
			r, err := harness.Run(cfg, mk())
			if err != nil {
				return nil, err
			}
			r.Variant = pt.Name
			t.Add(r)
		}
	}
	return t, nil
}

func runFig10a(o Options) (*harness.Table, error) {
	return runWaySweep(o, "Fig. 10(a) redundancy-caching way sensitivity", func(cfg *param.Config, ways int) {
		cfg.Tvarak.RedundancyWays = ways
	})
}

func runFig10b(o Options) (*harness.Table, error) {
	return runWaySweep(o, "Fig. 10(b) data-diff way sensitivity", func(cfg *param.Config, ways int) {
		cfg.Tvarak.DiffWays = ways
	})
}

func runWaySweep(o Options, title string, set func(*param.Config, int)) (*harness.Table, error) {
	t := &harness.Table{Title: title}
	for _, mk := range fig9Workloads(o) {
		r, err := harness.Run(o.config(param.Baseline), mk())
		if err != nil {
			return nil, err
		}
		t.Add(r)
		for _, ways := range []int{1, 2, 4, 6, 8} {
			cfg := o.config(param.Tvarak)
			set(cfg, ways)
			r, err := harness.Run(cfg, mk())
			if err != nil {
				return nil, err
			}
			r.Variant = fmt.Sprintf("%d-way", ways)
			t.Add(r)
		}
	}
	return t, nil
}

func runSec4G(o Options) (*harness.Table, error) {
	t := &harness.Table{Title: "§IV-G exclusive-cache TVARAK (no LLC data diffs)"}
	for _, mk := range fig9Workloads(o) {
		r, err := harness.Run(o.config(param.Baseline), mk())
		if err != nil {
			return nil, err
		}
		t.Add(r)
		for _, pt := range []struct {
			name  string
			feats param.TvarakFeatures
		}{
			{"inclusive(full)", param.FullTvarak()},
			{"exclusive(no-diffs)", param.TvarakFeatures{CacheLineChecksums: true, RedundancyCaching: true}},
		} {
			cfg := o.config(param.Tvarak)
			cfg.Tvarak.Features = pt.feats
			r, err := harness.Run(cfg, mk())
			if err != nil {
				return nil, err
			}
			r.Variant = pt.name
			t.Add(r)
		}
	}
	return t, nil
}

// runExtVilamb compares the Vilamb extension against the paper's four
// designs on the transactional workloads it applies to (Table I's
// "configurable" overhead row).
func runExtVilamb(o Options) (*harness.Table, error) {
	t := &harness.Table{Title: "extension: Vilamb (asynchronous epochs) vs evaluated designs"}
	mks := []func() harness.Workload{
		func() harness.Workload {
			cfg := redispm.Default(true)
			cfg.Ops = o.scale(cfg.Ops)
			return redispm.New(cfg)
		},
		func() harness.Workload {
			cfg := kvtrees.Default(kvtrees.CTree, kvtrees.InsertOnly)
			cfg.Ops = o.scale(cfg.Ops)
			return kvtrees.New(cfg)
		},
	}
	designs := append(o.designs(), param.Vilamb)
	for _, mk := range mks {
		for _, d := range designs {
			r, err := harness.Run(o.config(d), mk())
			if err != nil {
				return nil, err
			}
			t.Add(r)
		}
	}
	return t, nil
}

func runSec4HDimms(o Options) (*harness.Table, error) {
	t := &harness.Table{Title: "§IV-H NVM DIMM count (stream triad)"}
	for _, dimms := range []int{4, 8} {
		for _, d := range o.designs() {
			cfg := o.config(d)
			cfg.NVM = param.OptaneLike(dimms).Mem
			scfg := stream.Default(stream.Triad)
			scfg.ArrayBytes = uint64(o.scale(int(scfg.ArrayBytes))) &^ 4095
			r, err := harness.Run(cfg, stream.New(scfg))
			if err != nil {
				return nil, err
			}
			r.Variant = fmt.Sprintf("%d-DIMMs", dimms)
			r.Workload = fmt.Sprintf("%s/%ddimm", r.Workload, dimms)
			t.Add(r)
		}
	}
	return t, nil
}

func runSec4HTech(o Options) (*harness.Table, error) {
	t := &harness.Table{Title: "§IV-H NVM technology (stream triad)"}
	for _, tech := range []param.NVMTech{param.OptaneLike(4), param.BatteryBackedDRAM(4)} {
		for _, d := range o.designs() {
			cfg := o.config(d)
			cfg.NVM = tech.Mem
			scfg := stream.Default(stream.Triad)
			scfg.ArrayBytes = uint64(o.scale(int(scfg.ArrayBytes))) &^ 4095
			r, err := harness.Run(cfg, stream.New(scfg))
			if err != nil {
				return nil, err
			}
			r.Variant = tech.Name
			r.Workload = fmt.Sprintf("%s/%s", r.Workload, tech.Name)
			t.Add(r)
		}
	}
	return t, nil
}
