// Package experiments is the registry that maps every table and figure of
// the paper's evaluation to a runnable experiment over the harness and the
// seven applications (see DESIGN.md §3 for the index).
//
// Every experiment enumerates its independent (workload × design × variant)
// cells declaratively and hands them to one shared harness.Runner, which
// executes them across a bounded worker pool and reassembles the table in
// enumeration order — so the rendered tables are byte-identical at any
// parallelism level.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"tvarak/internal/apps/fio"
	"tvarak/internal/apps/kvtrees"
	"tvarak/internal/apps/nstore"
	"tvarak/internal/apps/redispm"
	"tvarak/internal/apps/stream"
	"tvarak/internal/harness"
	"tvarak/internal/live"
	"tvarak/internal/obs"
	"tvarak/internal/param"
)

// Options tune how experiments run.
type Options struct {
	// FullScale uses the paper's Table III machine (24 MB LLC) instead of
	// the 1/16-scale reproduction machine. Workload footprints do not
	// change, so full-scale runs are meaningful mainly for sizing studies.
	FullScale bool
	// Scale multiplies measured operation counts (1.0 = default).
	Scale float64
	// Designs restricts which designs run (nil = all four). Experiments
	// never mutate this slice.
	Designs []param.Design
	// Async shapes every Vilamb-design cell's machine: epoch interval,
	// dirty-tracking granularity, battery preset and recomputation mode
	// (the ext-async sweeps own their epoch/granularity axes and take only
	// the recomputation mode from here). The zero value is the classic
	// Vilamb sketch and leaves Scope strings and cell fingerprints
	// identical to their pre-async forms.
	Async param.AsyncConfig
	// Parallel bounds how many cells simulate concurrently: 0 means one
	// per CPU, 1 means sequential. Results are identical at any level.
	Parallel int
	// Shards spreads each cell's weave phase across up to this many OS
	// threads (0 or 1 = fully serial). Results are byte-identical at any
	// setting — see DESIGN.md §"Parallel weave" — so Shards is
	// deliberately excluded from journal fingerprints. Combine with
	// Parallel=1 to avoid oversubscribing CPUs.
	Shards int
	// Progress, if non-nil, is called after each cell completes.
	Progress harness.Progress
	// SampleEvery, when non-zero, samples every cell's measured run into
	// an epoch time series of the given cycle granularity; the series
	// rides on each Result and lands in the machine-readable export.
	SampleEvery uint64
	// Tracer, when non-nil, receives every cell's measured simulation
	// events, stamped with the cell's workload/design/variant label. It
	// must be safe for concurrent Trace calls when Parallel != 1.
	Tracer obs.Tracer
	// Context, when non-nil, cancels the run cooperatively: in-flight
	// cells stop at their next simulation phase boundary, completed
	// results are kept, and the table's Manifest reports the
	// interruption.
	Context context.Context
	// Journal, when non-nil, makes the run crash-safe: each completed
	// cell's result is journaled durably, and a resumed run (the same
	// journal reopened) restores journaled cells instead of re-simulating
	// them. Fingerprints are scoped by experiment id, Scale and
	// FullScale, so changing any of those re-runs rather than
	// resurrecting stale results.
	Journal *harness.Journal
	// CellTimeout, when non-zero, bounds each cell's wall-clock time; a
	// cell that exceeds it is marked hung (with a goroutine dump in the
	// journal) and its worker slot is released.
	CellTimeout time.Duration
	// Retries grants failing cells extra attempts before they count as
	// failed (hung and cancelled cells are never retried).
	Retries int
	// Degrade keeps an experiment going past failed cells: the table
	// renders them as explicit FAILED holes and the Manifest carries the
	// details, instead of the run aborting.
	Degrade bool
	// Live, when non-nil, streams per-cell lifecycle and phase-boundary
	// progress into the wall-clock telemetry bundle served at -ops-addr
	// (/metrics and /runs). Strictly read-only: attaching it changes no
	// result.
	Live *live.Telemetry
}

func (o Options) designs() []param.Design {
	if len(o.Designs) > 0 {
		return o.Designs
	}
	return param.Designs()
}

func (o Options) config(d param.Design) *param.Config {
	var c *param.Config
	if o.FullScale {
		c = param.Default(d)
	} else {
		c = param.ReproScale(d)
	}
	c.Shards = o.Shards
	if d == param.Vilamb && !o.Async.IsZero() {
		c.Async = o.Async
	}
	return c
}

func (o Options) scale(n int) int {
	if o.Scale <= 0 {
		return n
	}
	if s := int(float64(n) * o.Scale); s > 0 {
		return s
	}
	return 1
}

// scaleBytes applies Scale to a byte count in uint64 throughout, avoiding
// the uint64→int round-trip that silently truncates large footprints on
// 32-bit builds.
func (o Options) scaleBytes(n uint64) uint64 {
	if o.Scale <= 0 {
		return n
	}
	if s := uint64(float64(n) * o.Scale); s > 0 {
		return s
	}
	return 1
}

// Scope namespaces journal fingerprints: the experiment id plus every
// option that changes what a cell simulates. (Designs and SampleEvery
// already shape each cell's own fingerprint.) The fleet's gateway/worker
// handshake compares Scope strings to reject version- or option-skewed
// peers, and a journaled run resumes only under the same Scope.
func (o Options) Scope(id string) string {
	s := fmt.Sprintf("%s|scale=%g|full=%t", id, o.Scale, o.FullScale)
	if !o.Async.IsZero() {
		s += "|async=" + o.Async.Label()
	}
	return s
}

// run executes the cells on the options' runner and collects the table.
func (o Options) run(id, title string, cells []harness.Cell) (*harness.Table, error) {
	for i := range cells {
		cells[i].SampleEvery = o.SampleEvery
		cells[i].Tracer = o.Tracer
	}
	rn := harness.Runner{
		Workers:     o.Parallel,
		Progress:    o.Progress,
		Context:     o.Context,
		Journal:     o.Journal,
		Scope:       o.Scope(id),
		CellTimeout: o.CellTimeout,
		Retries:     o.Retries,
		Degrade:     o.Degrade,
		Live:        o.Live,
	}
	return rn.RunTable(title, cells)
}

// Experiment regenerates one table or figure of the paper.
type Experiment struct {
	ID    string
	Paper string // which figure/table it reproduces
	Title string // rendered table title; a fleet merge reuses it so distributed output is byte-identical
	Run   func(o Options) (*harness.Table, error)
}

// Cells enumerates the experiment's independent simulation cells without
// running them, for callers that schedule cells themselves. It returns nil
// for ids outside the registry.
func (e Experiment) Cells(o Options) []harness.Cell {
	if b := cellBuilders[e.ID]; b != nil {
		return b(o)
	}
	return nil
}

// cellBuilders maps experiment ids to their cell enumerators. runFromCells
// wires each entry into the registry's Run functions.
var cellBuilders = map[string]func(Options) []harness.Cell{
	"fig8-redis":  fig8RedisCells,
	"fig8-kv":     fig8KVCells,
	"fig8-nstore": fig8NStoreCells,
	"fig8-fio":    fig8FioCells,
	"fig8-stream": fig8StreamCells,
	"fig9":        fig9Cells,
	"fig10a": func(o Options) []harness.Cell {
		return waySweepCells(o, func(cfg *param.Config, ways int) { cfg.Tvarak.RedundancyWays = ways })
	},
	"fig10b": func(o Options) []harness.Cell {
		return waySweepCells(o, func(cfg *param.Config, ways int) { cfg.Tvarak.DiffWays = ways })
	},
	"sec4g":          sec4GCells,
	"sec4h-dimms":    sec4HDimmsCells,
	"sec4h-tech":     sec4HTechCells,
	"ext-vilamb":     extVilambCells,
	"ext-async":      extAsyncCells,
	"ext-async-mini": extAsyncMiniCells,
}

// runFromCells builds an Experiment.Run function over a cell enumerator.
func runFromCells(title string, id string) func(Options) (*harness.Table, error) {
	return func(o Options) (*harness.Table, error) {
		return o.run(id, title, cellBuilders[id](o))
	}
}

// Experiments returns the full registry, in paper order.
func Experiments() []Experiment {
	exps := []Experiment{
		{ID: "fig8-redis", Paper: "Fig. 8(a)-(d): Redis set-only and get-only", Title: "Fig. 8(a)-(d) Redis"},
		{ID: "fig8-kv", Paper: "Fig. 8(e)-(h): C-Tree/B-Tree/RB-Tree insert-only and balanced", Title: "Fig. 8(e)-(h) key-value structures"},
		{ID: "fig8-nstore", Paper: "Fig. 8(i)-(l): N-Store YCSB read-heavy/balanced/update-heavy", Title: "Fig. 8(i)-(l) N-Store"},
		{ID: "fig8-fio", Paper: "Fig. 8(m)-(p): fio seq/rand reads and writes", Title: "Fig. 8(m)-(p) fio"},
		{ID: "fig8-stream", Paper: "Fig. 8(q)-(t): stream copy/scale/add/triad", Title: "Fig. 8(q)-(t) stream"},
		{ID: "fig9", Paper: "Fig. 9: impact of TVARAK's design choices", Title: "Fig. 9 design-choice ablation (vs Baseline)"},
		{ID: "fig10a", Paper: "Fig. 10(a): sensitivity to redundancy-caching LLC ways", Title: "Fig. 10(a) redundancy-caching way sensitivity"},
		{ID: "fig10b", Paper: "Fig. 10(b): sensitivity to data-diff LLC ways", Title: "Fig. 10(b) data-diff way sensitivity"},
		{ID: "sec4g", Paper: "§IV-G: exclusive caches (TVARAK without LLC data diffs)", Title: "§IV-G exclusive-cache TVARAK (no LLC data diffs)"},
		{ID: "sec4h-dimms", Paper: "§IV-H: 4 vs 8 NVM DIMMs", Title: "§IV-H NVM DIMM count (stream triad)"},
		{ID: "sec4h-tech", Paper: "§IV-H: Optane-like vs battery-backed-DRAM NVM", Title: "§IV-H NVM technology (stream triad)"},
		{ID: "ext-vilamb", Paper: "extension: Table I's Vilamb row (asynchronous epochs) vs the paper's designs", Title: "extension: Vilamb (asynchronous epochs) vs evaluated designs"},
		{ID: "ext-async", Paper: "extension: async-redundancy family mega-sweep (epoch × dirty granularity × battery preset, 7 apps)", Title: "extension: async family epoch/granularity mega-sweep"},
		{ID: "ext-async-mini", Paper: "extension: reduced async-family sweep (golden and CI fleet gate)", Title: "extension: async family sweep (reduced)"},
	}
	for i := range exps {
		exps[i].Run = runFromCells(exps[i].Title, exps[i].ID)
	}
	return exps
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q (have %s)", id, strings.Join(ids, ", "))
}

// designCells is the Fig. 8 shape: every workload under every design.
func designCells(o Options, mk []func() harness.Workload) []harness.Cell {
	var cells []harness.Cell
	for _, m := range mk {
		for _, d := range o.designs() {
			cells = append(cells, harness.Cell{Config: o.config(d), Make: m})
		}
	}
	return cells
}

func fig8RedisCells(o Options) []harness.Cell {
	mk := []func() harness.Workload{}
	for _, setOnly := range []bool{true, false} {
		mk = append(mk, func() harness.Workload {
			cfg := redispm.Default(setOnly)
			cfg.Ops = o.scale(cfg.Ops)
			return redispm.New(cfg)
		})
	}
	return designCells(o, mk)
}

func fig8KVCells(o Options) []harness.Cell {
	mk := []func() harness.Workload{}
	for _, st := range kvtrees.Structures() {
		for _, mix := range []kvtrees.Mix{kvtrees.InsertOnly, kvtrees.Balanced} {
			mk = append(mk, func() harness.Workload {
				cfg := kvtrees.Default(st, mix)
				cfg.Ops = o.scale(cfg.Ops)
				return kvtrees.New(cfg)
			})
		}
	}
	return designCells(o, mk)
}

func fig8NStoreCells(o Options) []harness.Cell {
	mk := []func() harness.Workload{}
	for _, mix := range nstore.Mixes() {
		mk = append(mk, func() harness.Workload {
			cfg := nstore.Default(mix)
			cfg.Txns = o.scale(cfg.Txns)
			return nstore.New(cfg)
		})
	}
	return designCells(o, mk)
}

func fig8FioCells(o Options) []harness.Cell {
	mk := []func() harness.Workload{}
	for _, pat := range []fio.Pattern{fio.Seq, fio.Rand} {
		for _, wr := range []bool{false, true} {
			mk = append(mk, func() harness.Workload {
				cfg := fio.Default(pat, wr)
				cfg.AccessBytes = o.scaleBytes(cfg.AccessBytes)
				return fio.New(cfg)
			})
		}
	}
	return designCells(o, mk)
}

func fig8StreamCells(o Options) []harness.Cell {
	mk := []func() harness.Workload{}
	for _, k := range stream.Kernels() {
		mk = append(mk, func() harness.Workload {
			cfg := stream.Default(k)
			cfg.ArrayBytes = o.scaleBytes(cfg.ArrayBytes) &^ 4095
			return stream.New(cfg)
		})
	}
	return designCells(o, mk)
}

// fig9Workloads is the paper's ablation set: one workload per application.
func fig9Workloads(o Options) []func() harness.Workload {
	return []func() harness.Workload{
		func() harness.Workload {
			cfg := redispm.Default(true)
			cfg.Ops = o.scale(cfg.Ops)
			return redispm.New(cfg)
		},
		func() harness.Workload {
			cfg := kvtrees.Default(kvtrees.CTree, kvtrees.InsertOnly)
			cfg.Ops = o.scale(cfg.Ops)
			return kvtrees.New(cfg)
		},
		func() harness.Workload {
			cfg := nstore.Default(nstore.BalancedMix)
			cfg.Txns = o.scale(cfg.Txns)
			return nstore.New(cfg)
		},
		func() harness.Workload {
			cfg := fio.Default(fio.Rand, true)
			cfg.AccessBytes = o.scaleBytes(cfg.AccessBytes)
			return fio.New(cfg)
		},
		func() harness.Workload {
			cfg := stream.Default(stream.Triad)
			cfg.ArrayBytes = o.scaleBytes(cfg.ArrayBytes) &^ 4095
			return stream.New(cfg)
		},
	}
}

// fig9Points are the cumulative design points of Fig. 9.
var fig9Points = []struct {
	Name  string
	Feats param.TvarakFeatures
}{
	{"naive", param.TvarakFeatures{}},
	{"+dax-cl-csums", param.TvarakFeatures{CacheLineChecksums: true}},
	{"+red-caching", param.TvarakFeatures{CacheLineChecksums: true, RedundancyCaching: true}},
	{"+data-diffs(tvarak)", param.FullTvarak()},
}

func fig9Cells(o Options) []harness.Cell {
	var cells []harness.Cell
	for _, mk := range fig9Workloads(o) {
		cells = append(cells, harness.Cell{Config: o.config(param.Baseline), Make: mk})
		for _, pt := range fig9Points {
			cfg := o.config(param.Tvarak)
			cfg.Tvarak.Features = pt.Feats
			cells = append(cells, harness.Cell{Config: cfg, Make: mk, Variant: pt.Name})
		}
	}
	return cells
}

func waySweepCells(o Options, set func(*param.Config, int)) []harness.Cell {
	var cells []harness.Cell
	for _, mk := range fig9Workloads(o) {
		cells = append(cells, harness.Cell{Config: o.config(param.Baseline), Make: mk})
		for _, ways := range []int{1, 2, 4, 6, 8} {
			cfg := o.config(param.Tvarak)
			set(cfg, ways)
			cells = append(cells, harness.Cell{
				Config:  cfg,
				Make:    mk,
				Variant: fmt.Sprintf("%d-way", ways),
			})
		}
	}
	return cells
}

func sec4GCells(o Options) []harness.Cell {
	var cells []harness.Cell
	for _, mk := range fig9Workloads(o) {
		cells = append(cells, harness.Cell{Config: o.config(param.Baseline), Make: mk})
		for _, pt := range []struct {
			name  string
			feats param.TvarakFeatures
		}{
			{"inclusive(full)", param.FullTvarak()},
			{"exclusive(no-diffs)", param.TvarakFeatures{CacheLineChecksums: true, RedundancyCaching: true}},
		} {
			cfg := o.config(param.Tvarak)
			cfg.Tvarak.Features = pt.feats
			cells = append(cells, harness.Cell{Config: cfg, Make: mk, Variant: pt.name})
		}
	}
	return cells
}

// extVilambCells compares the Vilamb extension against the paper's four
// designs on the transactional workloads it applies to (Table I's
// "configurable" overhead row).
func extVilambCells(o Options) []harness.Cell {
	mks := []func() harness.Workload{
		func() harness.Workload {
			cfg := redispm.Default(true)
			cfg.Ops = o.scale(cfg.Ops)
			return redispm.New(cfg)
		},
		func() harness.Workload {
			cfg := kvtrees.Default(kvtrees.CTree, kvtrees.InsertOnly)
			cfg.Ops = o.scale(cfg.Ops)
			return kvtrees.New(cfg)
		},
	}
	// Copy before appending Vilamb: o.designs() may return the caller's
	// Options.Designs slice, and appending in place would scribble over
	// its spare capacity.
	base := o.designs()
	designs := make([]param.Design, 0, len(base)+1)
	designs = append(designs, base...)
	designs = append(designs, param.Vilamb)
	var cells []harness.Cell
	for _, mk := range mks {
		for _, d := range designs {
			cells = append(cells, harness.Cell{Config: o.config(d), Make: mk})
		}
	}
	return cells
}

func sec4HDimmsCells(o Options) []harness.Cell {
	var cells []harness.Cell
	for _, dimms := range []int{4, 8} {
		for _, d := range o.designs() {
			cfg := o.config(d)
			cfg.NVM = param.OptaneLike(dimms).Mem
			cells = append(cells, harness.Cell{
				Config: cfg,
				Make: func() harness.Workload {
					scfg := stream.Default(stream.Triad)
					scfg.ArrayBytes = o.scaleBytes(scfg.ArrayBytes) &^ 4095
					return stream.New(scfg)
				},
				Variant: fmt.Sprintf("%d-DIMMs", dimms),
				Rename:  func(w string) string { return fmt.Sprintf("%s/%ddimm", w, dimms) },
			})
		}
	}
	return cells
}

func sec4HTechCells(o Options) []harness.Cell {
	var cells []harness.Cell
	for _, tech := range []param.NVMTech{param.OptaneLike(4), param.BatteryBackedDRAM(4)} {
		for _, d := range o.designs() {
			cfg := o.config(d)
			cfg.NVM = tech.Mem
			cells = append(cells, harness.Cell{
				Config: cfg,
				Make: func() harness.Workload {
					scfg := stream.Default(stream.Triad)
					scfg.ArrayBytes = o.scaleBytes(scfg.ArrayBytes) &^ 4095
					return stream.New(scfg)
				},
				Variant: tech.Name,
				Rename:  func(w string) string { return fmt.Sprintf("%s/%s", w, tech.Name) },
			})
		}
	}
	return cells
}
