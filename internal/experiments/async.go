package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"tvarak/internal/apps/kvtrees"
	"tvarak/internal/harness"
	"tvarak/internal/obs"
	"tvarak/internal/param"
)

// asyncEpochs is the mega-sweep's epoch axis at the Table III 2.27 GHz
// clock: 1 µs, 10 µs, 100 µs and 1 ms between reconciliation passes. The
// epoch is also each design point's worst-case vulnerability window, so the
// axis spans Vilamb's "performance of no redundancy, coverage a knob" claim
// from nearly-synchronous to clearly-exposed.
var asyncEpochs = []uint64{2270, 22700, 227000, 2270000}

// asyncGrans is the dirty-tracking granularity axis: what the commit hook
// records, and therefore how much data each reconciliation pass touches.
var asyncGrans = []param.DirtyGran{param.GranPage, param.GranLine, param.GranRange}

// asyncSeven is the sweep's workload set: the Fig. 9 ablation set (one
// workload per application) widened to all seven campaign applications by
// adding the two remaining tree structures.
func asyncSeven(o Options) []func() harness.Workload {
	mks := fig9Workloads(o)
	for _, st := range []kvtrees.Structure{kvtrees.BTree, kvtrees.RBTree} {
		mks = append(mks, func() harness.Workload {
			cfg := kvtrees.Default(st, kvtrees.InsertOnly)
			cfg.Ops = o.scale(cfg.Ops)
			return kvtrees.New(cfg)
		})
	}
	return mks
}

// asyncGridCells enumerates one workload set against the async design
// family: Baseline and synchronous TVARAK anchor each workload, then every
// (epoch × granularity) Vilamb point, then the battery-backed-DRAM preset
// at each battery epoch (line-granular, staged intent checksums, zero
// vulnerability window). Options.Async contributes only the recomputation
// mode (Incremental): the sweep itself owns the epoch/granularity axes.
func asyncGridCells(o Options, mks []func() harness.Workload, epochs []uint64,
	grans []param.DirtyGran, batteryEpochs []uint64) []harness.Cell {
	var cells []harness.Cell
	for _, mk := range mks {
		cells = append(cells, harness.Cell{Config: o.config(param.Baseline), Make: mk})
		cells = append(cells, harness.Cell{Config: o.config(param.Tvarak), Make: mk})
		for _, ep := range epochs {
			for _, g := range grans {
				cfg := o.config(param.Vilamb)
				cfg.Async = param.AsyncConfig{EpochCyc: ep, DirtyGran: g, Incremental: o.Async.Incremental}
				cells = append(cells, harness.Cell{Config: cfg, Make: mk, Variant: cfg.Async.Label()})
			}
		}
		for _, ep := range batteryEpochs {
			cfg := o.config(param.Vilamb)
			cfg.Async = param.BatteryPreset(ep)
			cfg.Async.Incremental = o.Async.Incremental
			cells = append(cells, harness.Cell{Config: cfg, Make: mk, Variant: cfg.Async.Label()})
		}
	}
	return cells
}

// extAsyncCells is the full mega-sweep: 7 workloads × (Baseline, TVARAK,
// 4 epochs × 3 granularities of Vilamb, battery preset per epoch).
func extAsyncCells(o Options) []harness.Cell {
	return asyncGridCells(o, asyncSeven(o), asyncEpochs, asyncGrans, asyncEpochs)
}

// extAsyncMiniCells is the reduced sweep the golden regression test and the
// CI fleet gate run: two workload extremes (pointer-chasing c-tree inserts,
// sequential stream triad), two epochs, two granularities, one battery
// point. Small enough to simulate in seconds, wide enough to cross every
// axis of the family.
func extAsyncMiniCells(o Options) []harness.Cell {
	mks := []func() harness.Workload{asyncSeven(o)[1], asyncSeven(o)[4]}
	return asyncGridCells(o, mks,
		[]uint64{22700, 227000}, []param.DirtyGran{param.GranPage, param.GranLine},
		[]uint64{22700})
}

// parseAsyncVariant splits an AsyncConfig.Label-shaped variant
// ("ep22700/line+bat") into its epoch and series ("line+bat") parts.
func parseAsyncVariant(v string) (epoch uint64, series string, ok bool) {
	rest, found := strings.CutPrefix(v, "ep")
	if !found {
		return 0, "", false
	}
	num, series, found := strings.Cut(rest, "/")
	if !found || series == "" {
		return 0, "", false
	}
	epoch, err := strconv.ParseUint(num, 10, 64)
	if err != nil {
		return 0, "", false
	}
	return epoch, series, true
}

// AsyncFigures derives the async sweep's two figure panels from a finished
// table: runtime overhead vs epoch length, and the measured mean
// vulnerability window (cycles a dirty line stayed stale before its
// reconciliation) vs epoch length. One row per workload × granularity
// series, one column per epoch, both in first-appearance order so the
// panels are byte-identical at any parallelism or shard level. Returns nil
// when the table carries no async variants, so callers can apply it to any
// experiment's table unconditionally.
func AsyncFigures(tab *harness.Table) []obs.Figure {
	type point struct {
		overhead, window float64
		ok               bool
	}
	var (
		epochs []uint64
		rows   []string
		data   = map[string]map[uint64]point{}
	)
	seenEpoch := map[uint64]bool{}
	for _, r := range tab.Results {
		if r.Design != param.Vilamb || r.Failed() {
			continue
		}
		ep, series, ok := parseAsyncVariant(r.Variant)
		if !ok {
			continue
		}
		if !seenEpoch[ep] {
			seenEpoch[ep] = true
			// Insertion-sort into ascending order: the axis is tiny and the
			// result is independent of cell enumeration order.
			at := len(epochs)
			for i, e := range epochs {
				if ep < e {
					at = i
					break
				}
			}
			epochs = append(epochs[:at], append([]uint64{ep}, epochs[at:]...)...)
		}
		row := r.Workload + "/" + series
		if data[row] == nil {
			rows = append(rows, row)
			data[row] = map[uint64]point{}
		}
		window := 0.0
		if r.Stats.AsyncWindowLines > 0 && !strings.Contains(series, "+bat") {
			// Battery-preset points verify staged intent checksums at the
			// reconciliation pass, so their silent-vulnerability window is
			// zero by construction regardless of measured staleness.
			window = float64(r.Stats.AsyncWindowCyc) / float64(r.Stats.AsyncWindowLines)
		}
		data[row][ep] = point{overhead: tab.Overhead(r), window: window, ok: true}
	}
	if len(rows) == 0 {
		return nil
	}

	cols := make([]string, len(epochs))
	for i, ep := range epochs {
		cols[i] = fmt.Sprintf("%dcyc", ep)
	}
	overhead := obs.Figure{
		ID: "async-overhead-vs-epoch", Unit: "pct", Columns: cols,
		Title: "figure: async family runtime overhead vs epoch length",
	}
	window := obs.Figure{
		ID: "async-window-vs-epoch", Unit: "cyc", Columns: cols,
		Title: "figure: async family mean vulnerability window vs epoch length",
	}
	for _, row := range rows {
		or := obs.FigureRow{Label: row, Values: make([]float64, len(epochs))}
		wr := obs.FigureRow{Label: row, Values: make([]float64, len(epochs))}
		for i, ep := range epochs {
			p, ok := data[row][ep]
			if !ok {
				or.Holes |= 1 << uint(i)
				wr.Holes |= 1 << uint(i)
				continue
			}
			or.Values[i] = p.overhead
			wr.Values[i] = p.window
		}
		overhead.Rows = append(overhead.Rows, or)
		window.Rows = append(window.Rows, wr)
	}
	return []obs.Figure{overhead, window}
}
