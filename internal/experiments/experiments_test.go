package experiments_test

import (
	"testing"

	"tvarak/internal/experiments"
	"tvarak/internal/param"
)

func TestRegistryCoversEveryFigure(t *testing.T) {
	want := []string{
		"fig8-redis", "fig8-kv", "fig8-nstore", "fig8-fio", "fig8-stream",
		"fig9", "fig10a", "fig10b", "sec4g", "sec4h-dimms", "sec4h-tech",
		"ext-vilamb",
	}
	got := experiments.Experiments()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(got), len(want))
	}
	for i, id := range want {
		if got[i].ID != id {
			t.Errorf("experiment %d = %q, want %q", i, got[i].ID, id)
		}
		if got[i].Paper == "" || got[i].Run == nil {
			t.Errorf("experiment %q incomplete", id)
		}
	}
}

func TestLookup(t *testing.T) {
	e, err := experiments.Lookup("fig9")
	if err != nil || e.ID != "fig9" {
		t.Errorf("Lookup(fig9) = %v, %v", e.ID, err)
	}
	if _, err := experiments.Lookup("fig99"); err == nil {
		t.Error("Lookup of unknown id succeeded")
	}
}

func TestStreamExperimentSmoke(t *testing.T) {
	// Run the cheapest real experiment end to end at a tiny scale and
	// check table shape: 4 kernels x 4 designs = 16 rows, baselines at 0%.
	e, err := experiments.Lookup("fig8-stream")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := e.Run(experiments.Options{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Results) != 16 {
		t.Fatalf("fig8-stream rows = %d, want 16", len(tab.Results))
	}
	for _, r := range tab.Results {
		if r.Stats.Cycles == 0 {
			t.Errorf("%s/%s: zero runtime", r.Workload, r.Label())
		}
		if r.Design == param.Baseline && tab.Overhead(r) != 0 {
			t.Errorf("%s baseline overhead nonzero", r.Workload)
		}
		if r.Design != param.Baseline && tab.Overhead(r) <= 0 {
			t.Errorf("%s/%s: overhead %.3f not positive", r.Workload, r.Label(), tab.Overhead(r))
		}
	}
}

func TestSec4HTechSmoke(t *testing.T) {
	e, err := experiments.Lookup("sec4h-tech")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := e.Run(experiments.Options{
		Scale:   0.05,
		Designs: []param.Design{param.Baseline, param.Tvarak},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Results) != 4 {
		t.Fatalf("rows = %d, want 4 (2 techs x 2 designs)", len(tab.Results))
	}
	// Battery-backed DRAM must be faster than Optane-like NVM for the
	// same design and workload.
	var optane, dram uint64
	for _, r := range tab.Results {
		if r.Design != param.Baseline {
			continue
		}
		if r.Variant == "optane-like" {
			optane = r.Stats.Cycles
		} else {
			dram = r.Stats.Cycles
		}
	}
	if dram == 0 || optane == 0 || dram >= optane {
		t.Errorf("battery-backed DRAM baseline (%d) not faster than Optane-like (%d)", dram, optane)
	}
}

func TestDesignsFilterRespected(t *testing.T) {
	e, _ := experiments.Lookup("fig8-stream")
	tab, err := e.Run(experiments.Options{
		Scale:   0.05,
		Designs: []param.Design{param.Baseline},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Results {
		if r.Design != param.Baseline {
			t.Errorf("filtered run produced design %v", r.Design)
		}
	}
}
