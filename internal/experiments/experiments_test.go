package experiments_test

import (
	"testing"

	"tvarak/internal/experiments"
	"tvarak/internal/param"
)

func TestRegistryCoversEveryFigure(t *testing.T) {
	want := []string{
		"fig8-redis", "fig8-kv", "fig8-nstore", "fig8-fio", "fig8-stream",
		"fig9", "fig10a", "fig10b", "sec4g", "sec4h-dimms", "sec4h-tech",
		"ext-vilamb", "ext-async", "ext-async-mini",
	}
	got := experiments.Experiments()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(got), len(want))
	}
	for i, id := range want {
		if got[i].ID != id {
			t.Errorf("experiment %d = %q, want %q", i, got[i].ID, id)
		}
		if got[i].Paper == "" || got[i].Run == nil {
			t.Errorf("experiment %q incomplete", id)
		}
	}
}

func TestLookup(t *testing.T) {
	e, err := experiments.Lookup("fig9")
	if err != nil || e.ID != "fig9" {
		t.Errorf("Lookup(fig9) = %v, %v", e.ID, err)
	}
	if _, err := experiments.Lookup("fig99"); err == nil {
		t.Error("Lookup of unknown id succeeded")
	}
}

func TestStreamExperimentSmoke(t *testing.T) {
	// Run the cheapest real experiment end to end at a tiny scale and
	// check table shape: 4 kernels x 4 designs = 16 rows, baselines at 0%.
	e, err := experiments.Lookup("fig8-stream")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := e.Run(experiments.Options{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Results) != 16 {
		t.Fatalf("fig8-stream rows = %d, want 16", len(tab.Results))
	}
	for _, r := range tab.Results {
		if r.Stats.Cycles == 0 {
			t.Errorf("%s/%s: zero runtime", r.Workload, r.Label())
		}
		if r.Design == param.Baseline && tab.Overhead(r) != 0 {
			t.Errorf("%s baseline overhead nonzero", r.Workload)
		}
		if r.Design != param.Baseline && tab.Overhead(r) <= 0 {
			t.Errorf("%s/%s: overhead %.3f not positive", r.Workload, r.Label(), tab.Overhead(r))
		}
	}
}

func TestSec4HTechSmoke(t *testing.T) {
	e, err := experiments.Lookup("sec4h-tech")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := e.Run(experiments.Options{
		Scale:   0.05,
		Designs: []param.Design{param.Baseline, param.Tvarak},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Results) != 4 {
		t.Fatalf("rows = %d, want 4 (2 techs x 2 designs)", len(tab.Results))
	}
	// Battery-backed DRAM must be faster than Optane-like NVM for the
	// same design and workload.
	var optane, dram uint64
	for _, r := range tab.Results {
		if r.Design != param.Baseline {
			continue
		}
		if r.Variant == "optane-like" {
			optane = r.Stats.Cycles
		} else {
			dram = r.Stats.Cycles
		}
	}
	if dram == 0 || optane == 0 || dram >= optane {
		t.Errorf("battery-backed DRAM baseline (%d) not faster than Optane-like (%d)", dram, optane)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	// The determinism gate: the same experiment at -parallel 1 and
	// -parallel 8 must produce identical Result rows and byte-identical
	// rendered tables, regardless of completion order.
	e, err := experiments.Lookup("fig8-stream")
	if err != nil {
		t.Fatal(err)
	}
	seq, err := e.Run(experiments.Options{Scale: 0.05, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := e.Run(experiments.Options{Scale: 0.05, Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Results) != len(par.Results) {
		t.Fatalf("row counts differ: %d sequential vs %d parallel", len(seq.Results), len(par.Results))
	}
	for i := range seq.Results {
		s, p := seq.Results[i], par.Results[i]
		if s.Workload != p.Workload || s.Design != p.Design || s.Variant != p.Variant || s.Stats != p.Stats {
			t.Errorf("row %d differs:\n  sequential %s/%s %+v\n  parallel   %s/%s %+v",
				i, s.Workload, s.Label(), s.Stats, p.Workload, p.Label(), p.Stats)
		}
	}
	if seq.String() != par.String() {
		t.Errorf("rendered tables differ:\n--- sequential ---\n%s--- parallel ---\n%s", seq, par)
	}
}

func TestExtVilambDoesNotMutateDesignsSlice(t *testing.T) {
	// Regression: ext-vilamb used to append param.Vilamb directly onto
	// Options.Designs, scribbling over the caller's spare capacity.
	backing := []param.Design{param.Baseline, param.Tvarak, param.TxBPageCsums, param.TxBObjectCsums}
	padded := backing[:2:4] // spare capacity invites in-place append
	e, err := experiments.Lookup("ext-vilamb")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := e.Run(experiments.Options{Scale: 0.02, Parallel: 4, Designs: padded})
	if err != nil {
		t.Fatal(err)
	}
	if want := []param.Design{param.Baseline, param.Tvarak, param.TxBPageCsums, param.TxBObjectCsums}; !slicesEqual(backing, want) {
		t.Errorf("caller's Designs backing array mutated: %v, want %v", backing, want)
	}
	// 2 workloads x (2 requested designs + Vilamb) = 6 rows.
	if len(tab.Results) != 6 {
		t.Errorf("rows = %d, want 6", len(tab.Results))
	}
	for i, r := range tab.Results {
		wantVilamb := i%3 == 2
		if (r.Design == param.Vilamb) != wantVilamb {
			t.Errorf("row %d design = %v (Vilamb must be appended last per workload)", i, r.Design)
		}
	}
}

func slicesEqual(a, b []param.Design) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCellsEnumeration(t *testing.T) {
	// Cells exposes the declarative cell list without running anything;
	// counts follow the paper's grids.
	want := map[string]int{
		"fig8-stream": 16, // 4 kernels x 4 designs
		"fig9":        25, // 5 workloads x (baseline + 4 ablation points)
		"fig10a":      30, // 5 workloads x (baseline + 5 way counts)
		"sec4g":       15, // 5 workloads x (baseline + 2 variants)
		"sec4h-dimms": 8,  // 2 DIMM counts x 4 designs
		"ext-vilamb":  10, // 2 workloads x (4 designs + Vilamb)
	}
	for id, n := range want {
		e, err := experiments.Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(e.Cells(experiments.Options{})); got != n {
			t.Errorf("%s: %d cells, want %d", id, got, n)
		}
	}
}

func TestDesignsFilterRespected(t *testing.T) {
	e, _ := experiments.Lookup("fig8-stream")
	tab, err := e.Run(experiments.Options{
		Scale:   0.05,
		Designs: []param.Design{param.Baseline},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Results {
		if r.Design != param.Baseline {
			t.Errorf("filtered run produced design %v", r.Design)
		}
	}
}

func TestShardedExperimentMatchesSerial(t *testing.T) {
	// The weave-sharding determinism gate at the experiment level: the
	// same experiment with each cell's weave phase spread over 4 OS
	// threads must produce Result rows and rendered tables byte-identical
	// to the fully serial run.
	e, err := experiments.Lookup("fig8-stream")
	if err != nil {
		t.Fatal(err)
	}
	serial, err := e.Run(experiments.Options{Scale: 0.05, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := e.Run(experiments.Options{Scale: 0.05, Parallel: 1, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Results) != len(sharded.Results) {
		t.Fatalf("row counts differ: %d serial vs %d sharded", len(serial.Results), len(sharded.Results))
	}
	for i := range serial.Results {
		s, p := serial.Results[i], sharded.Results[i]
		if s.Workload != p.Workload || s.Design != p.Design || s.Variant != p.Variant || s.Stats != p.Stats {
			t.Errorf("row %d differs:\n  serial  %s/%s %+v\n  sharded %s/%s %+v",
				i, s.Workload, s.Label(), s.Stats, p.Workload, p.Label(), p.Stats)
		}
	}
	if serial.String() != sharded.String() {
		t.Errorf("rendered tables differ:\n--- serial ---\n%s--- sharded ---\n%s", serial, sharded)
	}
}

func TestShardsOptionReachesCellConfigs(t *testing.T) {
	e, err := experiments.Lookup("fig8-stream")
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range e.Cells(experiments.Options{Shards: 4}) {
		if cell.Config.Shards != 4 {
			t.Fatalf("cell %s got Shards=%d, want 4", cell.Config.Design, cell.Config.Shards)
		}
	}
}
