package experiments

import "testing"

// scaleBytes must stay in uint64 end to end: the old int round-trip
// truncated footprints above 2 GiB on 32-bit builds.
func TestScaleBytesBoundaries(t *testing.T) {
	cases := []struct {
		name  string
		scale float64
		n     uint64
		want  uint64
	}{
		{"zero scale passes through", 0, 1 << 40, 1 << 40},
		{"negative scale passes through", -1, 4096, 4096},
		{"unit scale identity", 1, 1 << 40, 1 << 40},
		{"halving stays exact", 0.5, 1 << 40, 1 << 39},
		{"tiny result clamps to 1", 0.001, 10, 1},
		{"above 32-bit int range", 0.5, 1 << 33, 1 << 32},
		{"max int32 boundary", 1, 1<<31 - 1, 1<<31 - 1},
		{"just past int32", 1, 1 << 31, 1 << 31},
	}
	for _, c := range cases {
		o := Options{Scale: c.scale}
		if got := o.scaleBytes(c.n); got != c.want {
			t.Errorf("%s: scaleBytes(%d) with Scale=%v = %d, want %d", c.name, c.n, c.scale, got, c.want)
		}
	}
}

// scale (the int path for operation counts) keeps its clamp-to-1 floor.
func TestScaleOpsFloor(t *testing.T) {
	o := Options{Scale: 1e-9}
	if got := o.scale(100); got != 1 {
		t.Errorf("scale(100) = %d, want floor of 1", got)
	}
}
