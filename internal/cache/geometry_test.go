package cache

import (
	"fmt"
	"testing"
)

// refSetIndex is the original two-division set-index formula; the shift/mask
// fast paths in SetIndex must agree with it for every geometry.
func refSetIndex(sets, lineSize int, stride uint64, addr uint64) int {
	return int((addr / uint64(lineSize) / stride) % uint64(sets))
}

// TestSetIndexMatchesReference pins the combined-divisor SetIndex to the
// reference formula across power-of-two and non-power-of-two line sizes and
// strides (the full-scale machine has 12 LLC banks, so stride 12 exercises
// the division fallback).
func TestSetIndexMatchesReference(t *testing.T) {
	cases := []struct {
		sets, lineSize int
		stride         uint64
	}{
		{512, 64, 1},   // private cache shape (pure shift)
		{512, 64, 4},   // repro-scale LLC bank (pure shift)
		{512, 64, 12},  // full-scale LLC bank (division)
		{1, 64, 1},     // single set: every address maps to set 0
		{1, 64, 12},    // single set with banked stride
		{8, 64, 3},     // small non-power-of-two stride
		{16, 48, 1},    // non-power-of-two line size (division)
		{16, 48, 6},    // both non-power-of-two
		{1024, 256, 8}, // larger power-of-two everything
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("sets=%d/line=%d/stride=%d", tc.sets, tc.lineSize, tc.stride), func(t *testing.T) {
			c := New(tc.sets, 2, tc.lineSize, tc.stride)
			// Sweep addresses beyond one full wrap of the index space,
			// including unaligned ones (SetIndex floors like the reference).
			span := uint64(tc.lineSize) * tc.stride * uint64(tc.sets) * 3
			step := span/4096 + 1
			for addr := uint64(0); addr < span; addr += step {
				if got, want := c.SetIndex(addr), refSetIndex(tc.sets, tc.lineSize, tc.stride, addr); got != want {
					t.Fatalf("SetIndex(%#x) = %d, want %d", addr, got, want)
				}
			}
			// High addresses (NVM lives above DRAM in the physical map).
			for _, addr := range []uint64{1 << 30, 1<<30 + 64, 1<<40 + uint64(tc.lineSize)*tc.stride*7} {
				if got, want := c.SetIndex(addr), refSetIndex(tc.sets, tc.lineSize, tc.stride, addr); got != want {
					t.Fatalf("SetIndex(%#x) = %d, want %d", addr, got, want)
				}
			}
		})
	}
}

// TestDirectMappedCache exercises the 1-way (direct-mapped) degenerate
// geometry: every conflict evicts, and the victim is always the single way.
func TestDirectMappedCache(t *testing.T) {
	c := New(4, 1, 64, 1)
	if c.Ways() != 1 {
		t.Fatalf("Ways() = %d, want 1", c.Ways())
	}
	a0, a1 := uint64(0), uint64(4*64) // same set, different tags
	v := c.Victim(a0, 0, 1)
	c.Install(v, a0, line(1), Shared)
	if c.Lookup(a0, 0, 1) == nil {
		t.Fatal("direct-mapped install lost")
	}
	v = c.Victim(a1, 0, 1)
	if v.Addr != a0 || v.State == Invalid {
		t.Fatalf("conflict victim = %#x (state %v), want the resident line %#x", v.Addr, v.State, a0)
	}
	c.Install(v, a1, line(2), Shared)
	if c.Lookup(a0, 0, 1) != nil {
		t.Fatal("evicted line still present")
	}
	if got := c.Lookup(a1, 0, 1); got == nil || got.Data[0] != 2 {
		t.Fatal("replacement line missing")
	}
}

// TestSingleSetFullyAssociative exercises the 1-set geometry used by the
// on-controller redundancy caches (fully associative, 64 ways).
func TestSingleSetFullyAssociative(t *testing.T) {
	const ways = 64
	c := New(1, ways, 64, 1)
	// Addresses with wildly different alignments all land in set 0.
	for _, addr := range []uint64{0, 64, 1 << 20, 1<<40 + 192} {
		if c.SetIndex(addr) != 0 {
			t.Fatalf("SetIndex(%#x) = %d, want 0", addr, c.SetIndex(addr))
		}
	}
	for i := 0; i < ways; i++ {
		a := uint64(i) * 4096 // arbitrary stride: no conflicts until full
		v := c.Victim(a, 0, ways)
		if v.State != Invalid {
			t.Fatalf("eviction before the single set filled (way %d)", i)
		}
		c.Install(v, a, line(byte(i)), Shared)
	}
	if got := c.CountValid(0, ways); got != ways {
		t.Fatalf("CountValid = %d, want %d", got, ways)
	}
	// One more install must evict the LRU (the first-installed line).
	v := c.Victim(uint64(ways)*4096, 0, ways)
	if v.Addr != 0 {
		t.Fatalf("LRU victim = %#x, want 0", v.Addr)
	}
}

// TestWayRangeBounds checks lookup/victim behaviour at the edges of way
// partitions: single-way sub-ranges, the last way, and the panic on an
// empty range.
func TestWayRangeBounds(t *testing.T) {
	const ways = 4
	c := New(2, ways, 64, 1)
	// Install one line per single-way partition [w, w+1) of set 0.
	for w := 0; w < ways; w++ {
		v := c.Victim(0, w, w+1)
		if v.State != Invalid {
			t.Fatalf("way %d already occupied", w)
		}
		c.Install(v, 0, line(byte(w+1)), Shared)
	}
	for w := 0; w < ways; w++ {
		got := c.Lookup(0, w, w+1)
		if got == nil || got.Data[0] != byte(w+1) {
			t.Fatalf("way-partition [%d,%d) lost its line", w, w+1)
		}
	}
	// The full range sees the first matching way.
	if got := c.Lookup(0, 0, ways); got == nil || got.Data[0] != 1 {
		t.Fatal("full-range lookup should return the first way's line")
	}
	// A half-open range excludes wayHi.
	if got := c.Lookup(0, 0, ways-1); got == nil || got.Data[0] != 1 {
		t.Fatal("range [0,ways-1) broken")
	}
	v := c.Victim(128, ways-1, ways) // same set as 0; only the last way is eligible
	if v.Addr != 0 || v.Data[0] != byte(ways) {
		t.Fatalf("victim outside single-way range [ways-1,ways)")
	}
	defer func() {
		if recover() == nil {
			t.Error("empty way range did not panic")
		}
	}()
	c.Victim(0, 2, 2)
}

// TestNewRejectsDegenerateGeometry covers the added lineSize/stride
// validation (the power-of-two sets check is covered elsewhere).
func TestNewRejectsDegenerateGeometry(t *testing.T) {
	for _, tc := range []struct {
		name             string
		sets, ways, line int
		stride           uint64
	}{
		{"zero-line-size", 4, 2, 0, 1},
		{"negative-line-size", 4, 2, -64, 1},
		{"zero-stride", 4, 2, 64, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d,%d,%d) did not panic", tc.sets, tc.ways, tc.line, tc.stride)
				}
			}()
			New(tc.sets, tc.ways, tc.line, tc.stride)
		})
	}
}
