// Package cache implements the set-associative caches of the simulated
// hierarchy: per-core L1-D and L2, the shared inclusive banked LLC, and
// TVARAK's small on-controller redundancy cache.
//
// A cache here is purely mechanical: lookup, LRU victim selection within a
// way range (which is how LLC way-partitioning for redundancy information
// and data diffs is expressed), and line storage including real content
// bytes and coherence/directory state. All policy — fill/eviction paths,
// MESI transitions, inclusive back-invalidation, partition rules — lives in
// the simulation engine and the TVARAK controller, which manipulate caches
// through this API.
package cache

import (
	"fmt"
	"math/bits"
)

// State is the coherence state of a line. The hierarchy runs a MESI-style
// protocol: the LLC directory grants Exclusive on sole fills, upper caches
// upgrade E→M silently on stores, and S→M upgrades invalidate other
// sharers.
type State uint8

const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// String returns the one-letter MESI name.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return "?"
}

// Line is one cache line: tag, content, coherence state and, in the LLC,
// the directory of upper-level owners.
type Line struct {
	Addr   uint64 // line-aligned physical address; valid when State != Invalid
	State  State
	Data   []byte
	Owners uint64 // LLC directory: bit i set if core i's private caches hold the line
	lru    uint64
	way    uint8 // fixed way index within its set, assigned at New
}

// Dirty reports whether the line holds content newer than the level below.
func (l *Line) Dirty() bool { return l.State == Modified }

// Cache is one set-associative array.
type Cache struct {
	sets     [][]Line
	lineSize int
	stride   uint64 // line-address stride between consecutive sets (LLC bank interleave)

	// LRU recency is tracked per way-partition rather than with a single
	// global counter: partOf maps a way index to its partition, ticks holds
	// one monotonic counter per partition. Victim selection only ever
	// compares lru values within one partition-aligned way range (data vs.
	// redundancy vs. diff ways in the LLC), so per-partition counters pick
	// the same victims as a global counter — while letting the sharded
	// weave touch the redundancy partition from a worker thread without
	// racing the engine thread's data-partition touches.
	partOf []uint8
	ticks  []uint64

	// Set indexing runs 1-3 times per simulated access, so the two-divide
	// index computation is folded into one divisor (floor(floor(a/l)/s) ==
	// floor(a/(l·s))) and a mask (sets is a power of two), with a pure
	// shift when the combined divisor is itself a power of two (every
	// private cache, and any LLC with a power-of-two bank count).
	setDiv   uint64 // lineSize*stride: address bytes per set increment
	setMask  uint64 // len(sets)-1
	setShift uint   // log2(setDiv), valid when divPow2
	divPow2  bool
}

// New builds a cache with the given geometry. stride expresses bank
// interleaving: an LLC bank in a 12-bank system indexes with stride 12
// because consecutive line addresses map to consecutive banks.
func New(sets, ways, lineSize int, stride uint64) *Cache {
	if sets <= 0 || ways <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: invalid geometry sets=%d ways=%d (sets must be a power of two)", sets, ways))
	}
	if lineSize <= 0 || stride == 0 {
		panic(fmt.Sprintf("cache: invalid geometry lineSize=%d stride=%d", lineSize, stride))
	}
	if ways > 256 {
		panic(fmt.Sprintf("cache: %d ways exceeds way-index range", ways))
	}
	c := &Cache{lineSize: lineSize, stride: stride}
	c.setDiv = uint64(lineSize) * stride
	c.setMask = uint64(sets - 1)
	if c.setDiv&(c.setDiv-1) == 0 {
		c.divPow2 = true
		c.setShift = uint(bits.TrailingZeros64(c.setDiv))
	}
	c.sets = make([][]Line, sets)
	backing := make([]Line, sets*ways)
	for i := range c.sets {
		c.sets[i] = backing[i*ways : (i+1)*ways]
		for w := range c.sets[i] {
			c.sets[i][w].way = uint8(w)
		}
	}
	c.partOf = make([]uint8, ways)
	c.ticks = make([]uint64, 1)
	return c
}

// SetPartitions divides the ways into LRU partitions at the given ascending
// upper bounds (each bound is the first way of the next partition; a final
// bound equal to Ways is implicit). Callers must keep Victim/Touch way
// ranges aligned to these partitions. Must be called on an empty cache —
// it resets all recency state.
func (c *Cache) SetPartitions(bounds ...int) {
	ways := c.Ways()
	part := 0
	prev := 0
	for _, b := range bounds {
		if b < prev || b > ways {
			panic(fmt.Sprintf("cache: partition bound %d out of order (ways=%d)", b, ways))
		}
		if b == prev {
			continue // empty partition (e.g. a disabled LLC red/diff region)
		}
		for w := prev; w < b; w++ {
			c.partOf[w] = uint8(part)
		}
		part++
		prev = b
	}
	if prev < ways {
		for w := prev; w < ways; w++ {
			c.partOf[w] = uint8(part)
		}
		part++
	}
	c.ticks = make([]uint64, part)
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return len(c.sets) }

// Ways returns the associativity.
func (c *Cache) Ways() int { return len(c.sets[0]) }

// SetIndex returns the set that addr maps to.
func (c *Cache) SetIndex(addr uint64) int {
	if c.divPow2 {
		return int(addr >> c.setShift & c.setMask)
	}
	return int(addr / c.setDiv & c.setMask)
}

// Lookup returns the line holding addr if present in ways [wayLo, wayHi),
// or nil. It does not update LRU state; callers that consume the access
// call Touch.
func (c *Cache) Lookup(addr uint64, wayLo, wayHi int) *Line {
	set := c.sets[c.SetIndex(addr)]
	for i := wayLo; i < wayHi; i++ {
		if set[i].State != Invalid && set[i].Addr == addr {
			return &set[i]
		}
	}
	return nil
}

// Touch marks the line most-recently-used within its way-partition.
func (c *Cache) Touch(l *Line) {
	p := c.partOf[l.way]
	c.ticks[p]++
	l.lru = c.ticks[p]
}

// Victim returns the line to evict to make room for addr within ways
// [wayLo, wayHi): an Invalid way if available, otherwise the LRU line.
func (c *Cache) Victim(addr uint64, wayLo, wayHi int) *Line {
	set := c.sets[c.SetIndex(addr)]
	var victim *Line
	for i := wayLo; i < wayHi; i++ {
		l := &set[i]
		if l.State == Invalid {
			return l
		}
		if victim == nil || l.lru < victim.lru {
			victim = l
		}
	}
	if victim == nil {
		panic("cache: empty way range")
	}
	return victim
}

// Install places addr with content data into the (previously chosen) victim
// line, which must already have been evicted by the caller. The line's
// content buffer is (re)allocated to the cache's line size.
func (c *Cache) Install(l *Line, addr uint64, data []byte, st State) {
	if len(data) != c.lineSize {
		panic(fmt.Sprintf("cache: install of %d bytes into %d-byte line", len(data), c.lineSize))
	}
	if l.Data == nil {
		l.Data = make([]byte, c.lineSize)
	}
	copy(l.Data, data)
	l.Addr = addr
	l.State = st
	l.Owners = 0
	c.Touch(l)
}

// Invalidate clears the line.
func (c *Cache) Invalidate(l *Line) {
	l.State = Invalid
	l.Owners = 0
}

// ForEach visits every valid line in ways [wayLo, wayHi) of every set.
// The engine uses it to drain dirty lines at end of run and the scrubber
// to enumerate cached redundancy.
func (c *Cache) ForEach(wayLo, wayHi int, fn func(*Line)) {
	for _, set := range c.sets {
		for i := wayLo; i < wayHi; i++ {
			if set[i].State != Invalid {
				fn(&set[i])
			}
		}
	}
}

// CountValid returns how many valid lines sit in ways [wayLo, wayHi).
func (c *Cache) CountValid(wayLo, wayHi int) int {
	n := 0
	c.ForEach(wayLo, wayHi, func(*Line) { n++ })
	return n
}
