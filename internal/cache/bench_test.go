package cache

import "testing"

// The cache array is the single hottest data structure of the simulator:
// every simulated memory access performs 1-3 Lookups plus a Victim/Install
// pair per miss. Benchmarks cover both the private-cache shape (stride 1)
// and the banked-LLC shape (stride = bank count, including the full-scale
// non-power-of-two 12-bank machine).

// fill installs one line in every way of every set.
func fill(c *Cache) {
	data := make([]byte, 64)
	ways := c.Ways()
	for s := 0; s < c.Sets(); s++ {
		for w := 0; w < ways; w++ {
			addr := uint64(s)*64*c.stride + uint64(w)*64*c.stride*uint64(c.Sets())
			v := c.Victim(addr, 0, ways)
			c.Install(v, addr, data, Shared)
		}
	}
}

func benchLookupHit(b *testing.B, stride uint64) {
	c := New(512, 16, 64, stride)
	fill(c)
	addrs := make([]uint64, 64)
	for i := range addrs {
		addrs[i] = uint64(i) * 64 * stride
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Lookup(addrs[i&63], 0, 16) == nil {
			b.Fatal("miss on installed line")
		}
	}
}

func BenchmarkLookupHitStride1(b *testing.B)  { benchLookupHit(b, 1) }
func BenchmarkLookupHitStride4(b *testing.B)  { benchLookupHit(b, 4) }
func BenchmarkLookupHitStride12(b *testing.B) { benchLookupHit(b, 12) }

func BenchmarkLookupMiss(b *testing.B) {
	c := New(512, 16, 64, 1)
	fill(c)
	// Absent addresses that still map onto full sets: beyond the filled tag
	// space.
	miss := uint64(c.Sets()) * uint64(c.Ways()) * 64 * 2
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Lookup(miss+uint64(i&63)*64, 0, 16) != nil {
			b.Fatal("hit on absent line")
		}
	}
}

func BenchmarkVictimLRUFullSet(b *testing.B) {
	c := New(512, 16, 64, 1)
	fill(c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := c.Victim(uint64(i&511)*64, 0, 16)
		if v == nil {
			b.Fatal("no victim")
		}
	}
}

func BenchmarkInstall(b *testing.B) {
	c := New(512, 16, 64, 1)
	fill(c) // pre-allocate every line's Data buffer
	data := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(i&511) * 64
		v := c.Victim(addr, 0, 16)
		c.Install(v, addr, data, Modified)
	}
}

func benchSetIndex(b *testing.B, stride uint64) {
	c := New(512, 16, 64, stride)
	b.ReportAllocs()
	b.ResetTimer()
	var s int
	for i := 0; i < b.N; i++ {
		s += c.SetIndex(uint64(i) * 64 * stride)
	}
	sinkInt = s
}

func BenchmarkSetIndexStride1(b *testing.B)  { benchSetIndex(b, 1) }
func BenchmarkSetIndexStride4(b *testing.B)  { benchSetIndex(b, 4) }
func BenchmarkSetIndexStride12(b *testing.B) { benchSetIndex(b, 12) }

func BenchmarkForEachFull(b *testing.B) {
	c := New(512, 16, 64, 1)
	fill(c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		c.ForEach(0, 16, func(l *Line) {
			if l.Dirty() {
				n++
			}
		})
		sinkInt = n
	}
}

var sinkInt int
