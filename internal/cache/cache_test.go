package cache

import (
	"testing"
	"testing/quick"
)

func line(b byte) []byte {
	d := make([]byte, 64)
	for i := range d {
		d[i] = b
	}
	return d
}

func TestGeometryValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two sets did not panic")
		}
	}()
	New(3, 4, 64, 1)
}

func TestLookupInstall(t *testing.T) {
	c := New(4, 2, 64, 1)
	addr := uint64(0x1000)
	if c.Lookup(addr, 0, 2) != nil {
		t.Fatal("lookup in empty cache hit")
	}
	v := c.Victim(addr, 0, 2)
	c.Install(v, addr, line(7), Exclusive)
	got := c.Lookup(addr, 0, 2)
	if got == nil || got.Data[0] != 7 || got.State != Exclusive {
		t.Fatal("installed line not found or wrong")
	}
}

func TestSetIndexStride(t *testing.T) {
	// With stride 12 (12 LLC banks), consecutive line addresses that map
	// to the same bank differ by 12 lines and land in consecutive sets.
	c := New(8, 2, 64, 12)
	a := uint64(64 * 12)
	if c.SetIndex(0) != 0 || c.SetIndex(a) != 1 {
		t.Errorf("stride indexing wrong: set(%#x)=%d", a, c.SetIndex(a))
	}
}

func TestLRUVictim(t *testing.T) {
	c := New(1, 3, 64, 1)
	addrs := []uint64{0, 64, 128}
	for _, a := range addrs {
		v := c.Victim(a, 0, 3)
		c.Install(v, a, line(byte(a)), Shared)
	}
	// Touch 0 and 128; LRU should be 64.
	c.Touch(c.Lookup(0, 0, 3))
	c.Touch(c.Lookup(128, 0, 3))
	v := c.Victim(192, 0, 3)
	if v.Addr != 64 {
		t.Errorf("LRU victim = %#x, want 0x40", v.Addr)
	}
}

func TestWayPartitionIsolation(t *testing.T) {
	c := New(1, 4, 64, 1)
	// Install into partition [0,2) and [2,4) with the same address; the
	// partitions must not see each other.
	v := c.Victim(0, 0, 2)
	c.Install(v, 0, line(1), Shared)
	if c.Lookup(0, 2, 4) != nil {
		t.Error("partition [2,4) sees line installed in [0,2)")
	}
	v2 := c.Victim(0, 2, 4)
	c.Install(v2, 0, line(2), Modified)
	if got := c.Lookup(0, 0, 2); got == nil || got.Data[0] != 1 {
		t.Error("partition [0,2) clobbered by [2,4) install")
	}
	if got := c.Lookup(0, 2, 4); got == nil || got.Data[0] != 2 {
		t.Error("partition [2,4) lost its line")
	}
	// Victim selection respects the range even when the other range is hot.
	v3 := c.Victim(64, 0, 2)
	if !(v3 == c.Lookup(0, 0, 2) || v3.State == Invalid) {
		t.Error("victim chosen outside partition")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(2, 2, 64, 1)
	v := c.Victim(0, 0, 2)
	c.Install(v, 0, line(9), Modified)
	l := c.Lookup(0, 0, 2)
	l.Owners = 5
	c.Invalidate(l)
	if c.Lookup(0, 0, 2) != nil {
		t.Error("line survives invalidation")
	}
	if l.Owners != 0 {
		t.Error("owners not cleared")
	}
	if c.CountValid(0, 2) != 0 {
		t.Error("CountValid after invalidate != 0")
	}
}

func TestForEachAndCount(t *testing.T) {
	c := New(4, 2, 64, 1)
	for i := uint64(0); i < 6; i++ {
		a := i * 64
		v := c.Victim(a, 0, 2)
		if v.State != Invalid {
			t.Fatalf("unexpected eviction at %d", i)
		}
		c.Install(v, a, line(byte(i)), Shared)
	}
	if got := c.CountValid(0, 2); got != 6 {
		t.Errorf("CountValid = %d, want 6", got)
	}
	sum := 0
	c.ForEach(0, 2, func(l *Line) { sum += int(l.Data[0]) })
	if sum != 0+1+2+3+4+5 {
		t.Errorf("ForEach visited wrong lines (sum=%d)", sum)
	}
}

func TestInstallRejectsWrongSize(t *testing.T) {
	c := New(2, 2, 64, 1)
	defer func() {
		if recover() == nil {
			t.Error("install with short data did not panic")
		}
	}()
	c.Install(c.Victim(0, 0, 2), 0, make([]byte, 32), Shared)
}

// Property: a cache never holds two valid copies of the same address within
// one way range, and lookups always return what was last installed.
func TestPropertyNoDuplicates(t *testing.T) {
	c := New(8, 4, 64, 1)
	shadow := make(map[uint64]byte)
	f := func(sel uint16, val byte) bool {
		addr := uint64(sel%128) * 64
		if l := c.Lookup(addr, 0, 4); l != nil {
			// hit: verify against shadow, then update
			if shadow[addr] != l.Data[0] {
				return false
			}
			l.Data[0] = val
			c.Touch(l)
		} else {
			v := c.Victim(addr, 0, 4)
			if v.State != Invalid {
				delete(shadow, v.Addr)
			}
			c.Install(v, addr, line(val), Shared)
		}
		shadow[addr] = val
		// duplicate scan
		n := 0
		c.ForEach(0, 4, func(l *Line) {
			if l.Addr == addr {
				n++
			}
		})
		return n == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
