// Benchmarks regenerating every table and figure of the paper's evaluation
// (§IV). Each benchmark runs one experiment of the registry end to end —
// all designs, fixed-work methodology — and reports the headline relative
// overheads as custom metrics, so `go test -bench` output can be compared
// row by row against the paper (see EXPERIMENTS.md).
//
// Benchmarks default to a reduced operation-count scale so the full suite
// completes in minutes; set -benchtime=1x (the default here is fine) and
// raise benchScale for closer-to-paper runs.
package tvarak_test

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"tvarak"
	"tvarak/internal/apps/redispm"
	"tvarak/internal/apps/stream"
	"tvarak/internal/experiments"
	"tvarak/internal/harness"
	"tvarak/internal/param"
)

// benchScale reduces measured op counts for benchmark runs.
const benchScale = 0.25

// assertParallelDeterminism is the PR 1 determinism gate, run inside the
// benchmark itself: the experiment's cells (every app uses a fixed seed) at
// a tiny scale must render byte-identical tables sequentially and across a
// full worker pool. It runs before the timer starts.
func assertParallelDeterminism(b *testing.B, e tvarak.Experiment) {
	b.Helper()
	const checkScale = 0.02
	seq, err := e.Run(experiments.Options{Scale: checkScale, Parallel: 1})
	if err != nil {
		b.Fatal(err)
	}
	par, err := e.Run(experiments.Options{Scale: checkScale, Parallel: runtime.NumCPU()})
	if err != nil {
		b.Fatal(err)
	}
	if seq.String() != par.String() {
		b.Fatalf("benchmark cells not deterministic across -parallel:\n--- sequential ---\n%s--- parallel ---\n%s", seq, par)
	}
}

// runExperiment executes one registry experiment and reports the TVARAK
// and software-scheme runtime overheads (fraction over Baseline) as
// benchmark metrics, plus the table itself via b.Log on the first run.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := tvarak.LookupExperiment(id)
	if err != nil {
		b.Fatal(err)
	}
	assertParallelDeterminism(b, e)
	b.ReportAllocs()
	b.ResetTimer()
	// Cells fan out across the CPUs through the parallel runner; the
	// reassembled table (and therefore every reported metric) is identical
	// to a sequential run's.
	for i := 0; i < b.N; i++ {
		tab, err := e.Run(experiments.Options{Scale: benchScale, Parallel: runtime.NumCPU()})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tab)
			report(b, tab)
		}
	}
}

// report emits per-design average overhead metrics.
func report(b *testing.B, tab *tvarak.ResultTable) {
	type agg struct {
		sum float64
		n   int
	}
	perDesign := map[param.Design]*agg{}
	for _, r := range tab.Results {
		if r.Design == param.Baseline || r.Variant != "" {
			continue
		}
		a := perDesign[r.Design]
		if a == nil {
			a = &agg{}
			perDesign[r.Design] = a
		}
		a.sum += tab.Overhead(r)
		a.n++
	}
	for d, a := range perDesign {
		if a.n > 0 {
			b.ReportMetric(100*a.sum/float64(a.n), fmt.Sprintf("%%over-base/%s", d))
		}
	}
}

// Fig. 8: runtime, energy, NVM accesses and cache accesses per application.

func BenchmarkFig8Redis(b *testing.B)  { runExperiment(b, "fig8-redis") }
func BenchmarkFig8KV(b *testing.B)     { runExperiment(b, "fig8-kv") }
func BenchmarkFig8NStore(b *testing.B) { runExperiment(b, "fig8-nstore") }
func BenchmarkFig8Fio(b *testing.B)    { runExperiment(b, "fig8-fio") }
func BenchmarkFig8Stream(b *testing.B) { runExperiment(b, "fig8-stream") }

// Fig. 9: design-choice ablation (naive → +DAX-CL → +caching → +diffs).

func BenchmarkFig9Ablation(b *testing.B) { runExperiment(b, "fig9") }

// Fig. 10: sensitivity to the LLC way-partition sizes.

func BenchmarkFig10Redundancy(b *testing.B) { runExperiment(b, "fig10a") }
func BenchmarkFig10Diff(b *testing.B)       { runExperiment(b, "fig10b") }

// §IV-G: exclusive-cache TVARAK (no data diffs).

func BenchmarkSec4GExclusive(b *testing.B) { runExperiment(b, "sec4g") }

// §IV-H: DIMM count and NVM technology sweeps.

func BenchmarkSec4HDimms(b *testing.B) { runExperiment(b, "sec4h-dimms") }
func BenchmarkSec4HTech(b *testing.B)  { runExperiment(b, "sec4h-tech") }

// Single-cell end-to-end benchmarks: ONE (workload, design) cell through
// the full fixed-work methodology (system build, setup, measured run).
// This is the unit the campaign and experiment runners multiply by
// thousands, so its ns/op and allocs/op are the headline hot-path numbers
// that tools/benchdiff gates against BENCH_6.json. sim-cycles is the
// simulated runtime — deterministic, so any drift is a correctness signal,
// not noise.

func benchSingleCell(b *testing.B, d tvarak.Design, mk func() harness.Workload) {
	b.Helper()
	benchCell(b, tvarak.ReproScaleConfig(d), mk)
}

// benchSingleCellShards runs one cell with its weave phase sharded across
// OS threads. Reported sim-* metrics are byte-identical to the serial
// benchmarks (the determinism gate); only wall-clock differs.
func benchSingleCellShards(b *testing.B, d tvarak.Design, mk func() harness.Workload, shards int) {
	b.Helper()
	cfg := tvarak.ReproScaleConfig(d)
	cfg.Shards = shards
	benchCell(b, cfg, mk)
}

func benchCell(b *testing.B, cfg *tvarak.Config, mk func() harness.Workload) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	var cycles, ops uint64
	for i := 0; i < b.N; i++ {
		r, err := harness.Run(cfg, mk())
		if err != nil {
			b.Fatal(err)
		}
		cycles = r.Stats.Cycles
		ops = r.Stats.Loads + r.Stats.Stores
	}
	b.ReportMetric(float64(cycles), "sim-cycles")
	b.ReportMetric(float64(ops), "sim-accesses")
	if elapsed := b.Elapsed().Seconds(); elapsed > 0 {
		b.ReportMetric(float64(ops)*float64(b.N)/elapsed, "accesses/sec")
	}
}

func streamTriadCell() harness.Workload {
	cfg := stream.Default(stream.Triad)
	cfg.ArrayBytes = uint64(float64(cfg.ArrayBytes)*benchScale) &^ 4095
	return stream.New(cfg)
}

func redisSetCell() harness.Workload {
	cfg := redispm.Default(true)
	cfg.Ops = int(float64(cfg.Ops) * benchScale)
	return redispm.New(cfg)
}

func BenchmarkCellStreamTriadBaseline(b *testing.B) {
	benchSingleCell(b, tvarak.DesignBaseline, streamTriadCell)
}

func BenchmarkCellStreamTriadTvarak(b *testing.B) {
	benchSingleCell(b, tvarak.DesignTvarak, streamTriadCell)
}

func BenchmarkCellRedisSetBaseline(b *testing.B) {
	benchSingleCell(b, tvarak.DesignBaseline, redisSetCell)
}

func BenchmarkCellRedisSetTvarak(b *testing.B) {
	benchSingleCell(b, tvarak.DesignTvarak, redisSetCell)
}

// Sharded-weave variants of the single-cell benchmarks. sim-cycles and
// sim-accesses must match the serial benchmarks exactly; accesses/sec is
// where the speedup (if the host has spare CPUs) shows up. Baseline cells
// defer every media write off the engine thread; TVARAK cells keep
// redundancy-ticketed bundles ordered, so their speedup is smaller.

func BenchmarkCellStreamTriadBaselineShards4(b *testing.B) {
	benchSingleCellShards(b, tvarak.DesignBaseline, streamTriadCell, 4)
}

func BenchmarkCellStreamTriadTvarakShards2(b *testing.B) {
	benchSingleCellShards(b, tvarak.DesignTvarak, streamTriadCell, 2)
}

func BenchmarkCellStreamTriadTvarakShards4(b *testing.B) {
	benchSingleCellShards(b, tvarak.DesignTvarak, streamTriadCell, 4)
}

func BenchmarkCellRedisSetTvarakShards4(b *testing.B) {
	benchSingleCellShards(b, tvarak.DesignTvarak, redisSetCell, 4)
}

// BenchmarkRecoveryLatency measures the parity-reconstruction path itself:
// cycles to detect and recover one corrupted line (Figs. 1-2 machinery).
func BenchmarkRecoveryLatency(b *testing.B) {
	cfg := tvarak.ReproScaleConfig(tvarak.DesignTvarak)
	m, err := tvarak.NewMachine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	dm, err := m.NewMapping("bench", 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	eng := m.Engine()
	data := bytes.Repeat([]byte{0x5a}, 64)
	eng.Run([]func(*tvarak.Core){func(c *tvarak.Core) {
		for off := uint64(0); off < 1<<20; off += 64 {
			dm.Store(c, off, data)
		}
	}})
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		off := uint64(i%16384) * 64
		// A pattern guaranteed to differ from both the initial fill and
		// any earlier iteration's content of this line (byte 2 is 0xA1,
		// never 0x5a; bytes 0-1 encode the iteration).
		fresh := bytes.Repeat([]byte{0xA1}, 64)
		fresh[0], fresh[1] = byte(i), byte(i>>8)
		eng.DropCaches()
		eng.NVM.InjectLostWrite(dm.Addr(off))
		eng.Run([]func(*tvarak.Core){func(c *tvarak.Core) {
			dm.Store(c, off, fresh) // lost
		}})
		eng.DropCaches()
		eng.ResetMeasurement()
		eng.Run([]func(*tvarak.Core){func(c *tvarak.Core) {
			buf := make([]byte, 64)
			dm.Load(c, off, buf)
		}})
		if eng.St.Recoveries != 1 {
			b.Fatalf("iteration %d: recoveries = %d, want 1", i, eng.St.Recoveries)
		}
		cycles += eng.St.Cycles
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "sim-cycles/recovery")
}
